"""The end-to-end synthesis flows of the paper's experiments.

:func:`synthesize_opamp` runs one complete experiment leg:

* ``mode='standalone'`` — ASTRX/OBLX alone: wide search intervals, a
  random starting point (the paper submitted "specifications ...
  without initial design points"),
* ``mode='ape'`` — APE followed by ASTRX/OBLX: the analytically sized
  circuit is the starting point and every interval is the APE value
  +/- 20 %.

Both legs share the same annealing schedule and evaluation budget, so
the measured difference is purely the paper's claim: the quality of the
initial design point and intervals.

The run is fault tolerant by default: failed candidate evaluations are
penalized and counted (never fatal), an infeasible APE pre-design
degrades to a coarser estimate (``mode='ape'``) with a recorded
:class:`~repro.runtime.diagnostics.Diagnostic`, and an optional
:class:`~repro.runtime.budget.EvalBudget` bounds the whole leg so it
returns "best point so far" instead of hanging.  With faults absent
and no budget/retry installed, the tolerant path is bit-for-bit
identical to the strict one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import ApeError, SpecificationError
from ..opamp import OpAmp, OpAmpSpec, OpAmpTopology, coarse_design_opamp, design_opamp
from ..runtime.budget import EvalBudget
from ..runtime.diagnostics import Diagnostic, DiagnosticLog
from ..runtime.retry import RetryPolicy
from ..technology import Technology
from .annealing import Annealer, AnnealingSchedule, AnnealResult
from .cost import CostFunction, FAILURE_COST, RobustCost
from .problems import OpAmpSizingProblem, Variable, ape_ranges, standalone_ranges
from .robust import RobustEvaluator, RobustSpec
from .specs import SynthesisSpec, opamp_synthesis_spec

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis import AnalysisReport

__all__ = [
    "SynthesisResult",
    "synthesize_opamp",
    "FEASIBILITY_MODES",
    "SURROGATE_MODES",
]

#: Accepted values of ``synthesize_opamp(feasibility=...)``.
FEASIBILITY_MODES = ("off", "reject", "contract")

#: Accepted values of ``synthesize_opamp(surrogate=...)``.
SURROGATE_MODES = ("off", "rank")


@dataclass
class SynthesisResult:
    """One synthesis run's outcome (one row of Table 1 or Table 4)."""

    name: str
    mode: str
    meets_spec: bool
    comment: str
    metrics: dict[str, float] | None
    best_cost: float
    evaluations: int
    cpu_seconds: float
    ape_seconds: float
    params: dict[str, float] = field(default_factory=dict)
    #: Candidate evaluations that produced no usable metrics.
    failed_evaluations: int = 0
    #: Candidates the electrical rule checker rejected before a Newton
    #: solve was attempted (subset of ``failed_evaluations``).
    lint_rejections: int = 0
    #: DC-solver retries consumed by the run's :class:`RetryPolicy`.
    retries: int = 0
    #: True when the run fell back somewhere: the APE pre-design was
    #: relaxed, the budget stopped the annealer early, or no candidate
    #: could be evaluated at all.
    degraded: bool = False
    #: Structured failure/degradation records accumulated by the run.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Independent annealing chains this run fanned out (1 = classic
    #: serial run) and the worker processes that executed them.
    restarts: int = 1
    workers: int = 1
    #: Evaluation memo-cache traffic across all chains of this run.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Throughput over the annealing phase (includes cache hits).
    evals_per_second: float = 0.0
    #: Per-chain results, best chain first kept in ``metrics``/``params``
    #: (chain order preserved here).
    chains: list[AnnealResult] = field(default_factory=list)
    #: Pool rebuilds after a worker was killed or declared hung.
    worker_restarts: int = 0
    #: Chains abandoned after exhausting their supervised retry budget.
    quarantined_chains: list[int] = field(default_factory=list)
    #: Chains whose outcomes were replayed from the run journal.
    resumed_chains: list[int] = field(default_factory=list)
    #: True when SIGINT/SIGTERM stopped the run early; the result then
    #: holds the best of the chains that *did* complete (``degraded``).
    interrupted: bool = False
    #: Journaled run directory (``None`` for unjournaled runs).
    run_dir: str | None = None
    #: LRU entries evicted from this run's evaluation memo.
    cache_evictions: int = 0
    #: Robust-synthesis reporting (``robust_mode`` is ``None`` for a
    #: plain nominal run).  ``metrics`` then holds the *worst-case*
    #: per-metric aggregation over the variant family, ``corner_metrics``
    #: the winning design's full per-variant fan-out, ``worst_corner``
    #: the costliest variant label and ``estimated_yield`` the fraction
    #: of variants meeting the spec.
    robust_mode: str | None = None
    corner_evals: int = 0
    screened_candidates: int = 0
    worst_corner: str | None = None
    estimated_yield: float | None = None
    corner_metrics: dict[str, dict[str, float] | None] = field(
        default_factory=dict
    )
    #: Static feasibility report when the pre-solve gate ran
    #: (``feasibility != "off"``); ``None`` otherwise.  A rejected spec
    #: returns with ``evaluations == 0`` and this report's F/C findings.
    feasibility: "AnalysisReport | None" = None
    #: Persistent evaluation store this run read/wrote (``None`` when
    #: the run was memory-only) and its traffic: lookups served from
    #: disk and new rows flushed back.
    store_dir: str | None = None
    store_hits: int = 0
    store_writes: int = 0
    #: Surrogate screening mode plus its counters: proposals discarded
    #: un-evaluated and model (re)fits across all chains.
    surrogate: str = "off"
    surrogate_skips: int = 0
    surrogate_refits: int = 0

    def metric(self, key: str, default: float = float("nan")) -> float:
        if self.metrics is None:
            return default
        return self.metrics.get(key, default)


def synthesize_opamp(
    tech: Technology,
    spec: OpAmpSpec,
    topology: OpAmpTopology | None = None,
    *,
    mode: str = "ape",
    synthesis_spec: SynthesisSpec | None = None,
    range_factor: float = 0.2,
    max_evaluations: int = 250,
    schedule: AnnealingSchedule | None = None,
    seed: int = 1,
    name: str = "opamp",
    tolerant: bool = True,
    budget: EvalBudget | None = None,
    retry: RetryPolicy | None = None,
    diagnostics: DiagnosticLog | None = None,
    lint: bool = True,
    restarts: int = 1,
    workers: int | None = None,
    memo: "bool | EvalMemo | None" = None,
    oversubscribe: bool = False,
    run_dir: str | None = None,
    resume: bool = False,
    supervisor: "SupervisorConfig | None" = None,
    robust: RobustSpec | None = None,
    feasibility: str = "off",
    store_dir: str | None = None,
    surrogate: str = "off",
) -> SynthesisResult:
    """Run one APE(+/-)ASTRX/OBLX synthesis leg for an op-amp spec.

    ``tolerant`` (the default) treats every evaluation failure as a
    penalized, counted outcome; ``tolerant=False`` restores the strict
    behaviour where an unexpected :class:`ApeError` in the APE
    pre-design or the evaluation loop propagates.  ``budget``, ``retry``
    and ``diagnostics`` are optional runtime hooks — absent (and with no
    faults occurring), results are bit-for-bit identical to a plain run.
    ``lint`` (the default) pre-screens every candidate with the
    electrical rule checker so structurally singular or
    out-of-technology circuits are rejected before a Newton solve;
    rejections are counted on ``SynthesisResult.lint_rejections``.

    ``restarts`` fans out that many independently seeded annealing
    chains (chain ``i`` anneals with a seed derived from ``(seed, i)``;
    chain 0 keeps ``seed``) across ``workers`` processes via
    :mod:`repro.parallel` and returns the best chain; the per-chain
    :class:`AnnealResult`s land on ``SynthesisResult.chains``.  Chains
    run with the executor's fast evaluation profile (memoized,
    warm-started, in-place benches), so ``restarts=1`` — the default,
    bit-for-bit the classic serial path — is the reference behaviour.
    ``memo`` controls the evaluation cache: ``None`` enables a private
    cache for multi-restart runs only, ``True``/``False`` force it, and
    an :class:`~repro.parallel.EvalMemo` instance is used directly (and
    so can be shared across runs, e.g. the rows of a table).  A
    ``budget`` deadline becomes a shared wall-clock deadline: every
    chain stops at the same absolute instant, wherever it runs.
    ``workers`` is clamped to usable CPUs unless ``oversubscribe``.

    Multi-chain runs are *supervised* (``supervisor`` overrides the
    default :class:`~repro.runtime.SupervisorConfig`): killed or hung
    workers are replaced and their chains re-run (bounded retries,
    quarantine for poison tasks), and SIGINT/SIGTERM drain in-flight
    chains and return the best-so-far partial result flagged
    ``degraded``/``interrupted`` instead of raising.  ``run_dir``
    write-ahead journals every finished chain; ``resume=True`` replays
    the journaled chains of an interrupted run (after verifying the
    directory's problem fingerprint) and executes only the rest,
    reproducing the uninterrupted run's result bit-for-bit — chain
    seeds are derived from ``(seed, index)``, so nothing depends on
    which process (or which *run*) executed a chain.

    ``robust`` (a :class:`~repro.synthesis.robust.RobustSpec`) turns
    variation into a first-class objective: every candidate is
    evaluated across the spec's process corners and deterministic
    mismatch samples (screen-then-verify: only candidates whose
    nominal cost clears a fixed threshold fan out), and the annealer
    minimizes the worst-case or yield-weighted cost.  The result then
    reports worst-corner spec margins in ``metrics`` plus the robust
    fields (``corner_evals``, ``worst_corner``, ``estimated_yield``,
    ``corner_metrics``).  All determinism/resume guarantees above hold
    unchanged — variant evaluations are canonical and memo-tagged per
    corner/sample.

    ``store_dir`` attaches the persistent cross-run evaluation store
    (:mod:`repro.store`): every exact evaluation is read through and
    written behind a shared SQLite database keyed by the problem's
    content fingerprint, so a repeated (or resumed, or multi-tenant)
    run starts warm.  ``surrogate="rank"`` additionally screens each
    annealer move through a cheap ridge model fitted on the accumulated
    corpus — several proposals are drawn, only the predicted best pays
    a full evaluation.  ``store_dir=None, surrogate="off"`` (the
    defaults) are bit-identical to the store-less code path; a
    store-backed run's *results* are worker-count independent, and a
    corrupt or locked store degrades to memory-only with a Diagnostic
    instead of failing the run.

    ``feasibility`` arms the static pre-solve gate (:mod:`repro.analysis`):
    ``"reject"`` runs the interval feasibility analysis first and, when
    an F/C rule *proves* the spec unsatisfiable over the search box,
    returns immediately (``meets_spec=False``, ``evaluations == 0``,
    the report on ``SynthesisResult.feasibility``) without spending a
    single solve; ``"contract"`` additionally shrinks each variable's
    range to the spec-consistent sub-interval before annealing.  The
    default ``"off"`` skips the gate entirely and is bit-for-bit the
    pre-gate behaviour (including ``--resume`` journals).
    """
    if mode not in ("standalone", "ape"):
        raise SpecificationError(
            f"unknown synthesis mode {mode!r}",
            context={"mode": mode, "known": ("standalone", "ape")},
        )
    if restarts < 1:
        raise SpecificationError(
            f"restarts must be >= 1, got {restarts}",
            context={"parameter": "restarts", "value": restarts},
        )
    if feasibility not in FEASIBILITY_MODES:
        raise SpecificationError(
            f"unknown feasibility mode {feasibility!r}",
            context={"feasibility": feasibility, "known": FEASIBILITY_MODES},
        )
    if surrogate not in SURROGATE_MODES:
        raise SpecificationError(
            f"unknown surrogate mode {surrogate!r}",
            context={"surrogate": surrogate, "known": SURROGATE_MODES},
        )
    if synthesis_spec is None:
        synthesis_spec = opamp_synthesis_spec(spec)
    cost_fn = CostFunction(synthesis_spec)
    log = diagnostics if diagnostics is not None else DiagnosticLog()
    # Shared logs/policies may carry state from earlier runs; report
    # only this run's contribution.
    records_before = len(log.records)
    retries_before = retry.total_retries if retry is not None else 0
    memo_obj = _resolve_memo(
        memo,
        restarts,
        journaled=run_dir is not None,
        stored=store_dir is not None,
    )

    feasibility_report = None
    box_override: dict[str, tuple[float, float]] | None = None
    if feasibility != "off":
        gate_start = time.perf_counter()
        feasibility_report = _feasibility_gate(
            tech,
            spec,
            topology,
            synthesis_spec,
            mode=mode,
            range_factor=range_factor,
            contract=feasibility == "contract",
            name=name,
            log=log,
        )
        gate_seconds = time.perf_counter() - gate_start
        if feasibility_report is not None and not feasibility_report.feasible:
            codes = ", ".join(feasibility_report.error_codes)
            return SynthesisResult(
                name=name,
                mode=mode,
                meets_spec=False,
                comment=f"spec provably infeasible before solve ({codes})",
                metrics=None,
                best_cost=FAILURE_COST,
                evaluations=0,
                cpu_seconds=0.0,
                ape_seconds=gate_seconds,
                diagnostics=list(log.records[records_before:]),
                restarts=restarts,
                workers=0,
                robust_mode=robust.mode if robust is not None else None,
                feasibility=feasibility_report,
            )
        if (
            feasibility == "contract"
            and feasibility_report is not None
            and feasibility_report.contracted is not None
        ):
            contracted = dict(feasibility_report.contracted)
            if contracted != dict(feasibility_report.box):
                box_override = contracted

    if (
        restarts > 1
        or run_dir is not None
        or store_dir is not None
        or surrogate != "off"
    ):
        # Store-backed and surrogate-guided runs route through the
        # executor path even at restarts=1: it owns the memo/store
        # two-tier plumbing, and its single-chain trajectory is the
        # same canonical evaluation sequence as the serial path.
        return _synthesize_parallel(
            tech=tech,
            spec=spec,
            topology=topology,
            mode=mode,
            synthesis_spec=synthesis_spec,
            cost_fn=cost_fn,
            range_factor=range_factor,
            max_evaluations=max_evaluations,
            schedule=schedule,
            seed=seed,
            name=name,
            tolerant=tolerant,
            budget=budget,
            retry=retry,
            log=log,
            records_before=records_before,
            lint=lint,
            restarts=restarts,
            workers=workers,
            memo=memo_obj,
            oversubscribe=oversubscribe,
            run_dir=run_dir,
            resume=resume,
            supervisor=supervisor,
            robust=robust,
            feasibility=feasibility,
            feasibility_report=feasibility_report,
            box_override=box_override,
            store_dir=store_dir,
            surrogate=surrogate,
        )

    # APE always provides the *structure* (ASTRX/OBLX also receives the
    # topology); in standalone mode its sizes are discarded.
    if budget is not None:
        budget.start()
    degraded_design = False
    ape_start = time.perf_counter()
    if tolerant:
        template, design_notes = coarse_design_opamp(
            tech, spec, topology, name=name
        )
        if design_notes:
            degraded_design = True
            for note in design_notes:
                log.record(note)
    else:
        template = design_opamp(tech, spec, topology, name=name)
    ape_seconds = time.perf_counter() - ape_start

    if mode == "ape":
        variables = ape_ranges(template, factor=range_factor)
    else:
        variables = standalone_ranges(template)
    if box_override is not None:
        # The feasibility gate's contracted box: same variables, same
        # order, each range replaced by its spec-consistent sub-interval.
        variables = [
            Variable(v.name, *box_override.get(v.name, (v.lo, v.hi)))
            for v in variables
        ]
    if mode == "ape":
        x0 = {
            v.name: min(max(template.initial_point().get(v.name, v.lo), v.lo), v.hi)
            for v in variables
        }
    else:
        x0 = None  # random start inside the wide box

    problem = OpAmpSizingProblem(
        template,
        variables,
        retry=retry,
        diagnostics=log if tolerant else None,
        lint=lint,
    )
    robust_eval = None
    if robust is not None:
        robust_eval = RobustEvaluator(
            template,
            variables,
            robust,
            synthesis_spec,
            retry=retry,
            diagnostics=log if tolerant else None,
            lint=lint,
            nominal_problem=problem,
        )

    def evaluate(params: dict[str, float]):
        if robust_eval is not None:
            return robust_eval.evaluate(params)
        metrics = problem.evaluate(params)
        return cost_fn(metrics), metrics

    def evaluate_tolerant(params: dict[str, float]):
        # The problem already absorbs the expected simulation failures;
        # this is the last line of defence against anything else in the
        # stack, so one bad candidate can never abort a whole table run.
        try:
            return evaluate(params)
        except ApeError as exc:
            log.record_exception(
                "synthesis.evaluate",
                exc,
                severity="warning",
                suggested_fix="candidate penalized; see the exception chain",
            )
            return FAILURE_COST, None

    chain_eval = evaluate_tolerant if tolerant else evaluate
    hits_before = memo_obj.hits if memo_obj is not None else 0
    misses_before = memo_obj.misses if memo_obj is not None else 0
    if memo_obj is not None and robust_eval is None:
        # Explicit opt-in on a serial run (restarts=1 never enables the
        # memo by itself): cache hits skip the evaluation entirely,
        # which is exact for canonical evaluations but visible to an
        # armed fault injector's call sequence.
        chain_eval = memo_obj.wrap(chain_eval)
    elif robust_eval is not None:
        # Robust runs memoize per variant (tagged keys) inside the
        # evaluator instead of wrapping the aggregated cost.
        robust_eval.memo = memo_obj
    annealer = Annealer(
        chain_eval,
        problem.bounds(),
        schedule=schedule,
        seed=seed,
    )
    start = time.perf_counter()
    result: AnnealResult = annealer.run(
        x0=x0, max_evaluations=max_evaluations, budget=budget
    )
    cpu = time.perf_counter() - start

    if result.degraded:
        log.record(
            Diagnostic(
                subsystem="synthesis.engine",
                severity="warning",
                message=(
                    f"{name}: annealing stopped early ({result.stop_reason}) "
                    f"after {result.evaluations} evaluations; returning the "
                    "best point so far"
                ),
                suggested_fix=(
                    "raise the budget's deadline/failure limits or reduce "
                    "max_evaluations to finish within budget"
                ),
                context={
                    "name": name,
                    "mode": mode,
                    "stop_reason": result.stop_reason,
                },
            )
        )

    meets = cost_fn.meets_spec(result.best_metrics)
    robust_detail: dict | None = None
    worst_corner = None
    estimated_yield = None
    corner_evals = 0
    screened = 0
    if robust_eval is not None:
        screened = robust_eval.screened_candidates
        if result.best_params:
            # Final verification: the winning design's full fan-out
            # (screening ignored), the basis of the robust report.
            robust_detail = robust_eval.detail(result.best_params)
            worst_corner = robust_eval.cost.worst_variant(robust_detail)
            estimated_yield = robust_eval.cost.estimated_yield(robust_detail)
            meets = robust_eval.cost.meets_spec(robust_detail)
        corner_evals = robust_eval.corner_evaluations
        if budget is not None:
            budget.corner_evaluations += corner_evals
    from ..runtime.stats import global_stats

    global_stats().record_run(
        evaluations=result.evaluations,
        seconds=cpu,
        corner_evals=corner_evals,
        cache_hits=(memo_obj.hits - hits_before) if memo_obj is not None else 0,
        cache_misses=(
            (memo_obj.misses - misses_before) if memo_obj is not None else 0
        ),
    )
    return SynthesisResult(
        name=name,
        mode=mode,
        meets_spec=meets,
        comment=cost_fn.describe_failure(result.best_metrics),
        metrics=result.best_metrics,
        best_cost=result.best_cost,
        evaluations=result.evaluations,
        cpu_seconds=cpu,
        ape_seconds=ape_seconds,
        params=result.best_params,
        failed_evaluations=result.failed_evaluations,
        lint_rejections=problem.lint_rejections,
        retries=(
            retry.total_retries - retries_before if retry is not None else 0
        ),
        degraded=(
            degraded_design
            or result.degraded
            or result.best_metrics is None
            or (
                robust_detail is not None
                and any(m is None for m in robust_detail.values())
            )
        ),
        diagnostics=list(log.records[records_before:]),
        restarts=1,
        workers=1,
        cache_hits=(
            (memo_obj.hits - hits_before) if memo_obj is not None else 0
        ),
        cache_misses=(
            (memo_obj.misses - misses_before) if memo_obj is not None else 0
        ),
        evals_per_second=result.evals_per_second,
        chains=[result],
        robust_mode=robust.mode if robust is not None else None,
        corner_evals=corner_evals,
        screened_candidates=screened,
        worst_corner=worst_corner,
        estimated_yield=estimated_yield,
        corner_metrics=robust_detail if robust_detail is not None else {},
        feasibility=feasibility_report,
    )


def _feasibility_gate(
    tech,
    spec,
    topology,
    synthesis_spec,
    *,
    mode,
    range_factor,
    contract,
    name,
    log,
):
    """Run the static analysis pre-gate; never raises, never blocks.

    Analysis failures (unsupported topology, even a crash in the
    analyzer) degrade to "no verdict": synthesis proceeds exactly as if
    the gate had passed, with a diagnostic recording why.
    """
    from ..analysis import analyze_problem

    try:
        report = analyze_problem(
            tech,
            spec,
            topology,
            synthesis_spec,
            mode=mode,
            range_factor=range_factor,
            contract=contract,
            name=name,
        )
    except ApeError as exc:
        log.record_exception(
            "synthesis.feasibility",
            exc,
            severity="warning",
            suggested_fix="feasibility gate skipped; synthesis proceeds ungated",
        )
        return None
    if not report.feasible:
        for finding in report.findings:
            if finding.severity != "error":
                continue
            log.record(
                Diagnostic(
                    subsystem="synthesis.feasibility",
                    severity="error",
                    message=f"{name}: {finding.render()}",
                    suggested_fix=finding.fix_hint,
                    context={
                        "name": name,
                        "code": finding.code,
                        "metric": finding.metric,
                    },
                )
            )
    return report


def _resolve_memo(
    memo, restarts: int, *, journaled: bool = False, stored: bool = False
):
    """Normalize the ``memo`` argument to an EvalMemo or ``None``.

    ``None`` means "default policy": cache only when the run fans out
    multiple chains, is journaled (a resumed run wants its warm cache
    back) or is store-backed (the memo is the store's front tier) — a
    plain serial run stays exactly the classic code path (and keeps
    exact-count fault-injection accounting).
    """
    from ..parallel import EvalMemo

    if isinstance(memo, EvalMemo):
        return memo
    if memo is True or (
        memo is None and (restarts > 1 or journaled or stored)
    ):
        return EvalMemo()
    return None


def _box_key(box_override):
    """Hashable, pickle-stable form of a contracted box (or ``None``)."""
    if box_override is None:
        return None
    return tuple(sorted(box_override.items()))


def _run_fingerprint(**parts):
    """Problem identity for the run journal (see ``run_fingerprint``)."""
    from ..runtime.journal import run_fingerprint

    return run_fingerprint(tuple(sorted(parts.items())))


def _robust_verify(task, robust, params, *, journal, workers, oversubscribe):
    """Final per-variant verification of a winning robust design.

    Fans the variant labels over the process pool
    (:func:`~repro.parallel.parallel_map`) — corners are a second axis
    of parallelism next to chains.  The detail is journaled
    (``robust-verified``) keyed by the exact winning parameters, so a
    resumed run replays the recorded fan-out instead of recomputing it
    (JSON floats round-trip exactly, keeping resume bit-for-bit).
    """
    from ..parallel import parallel_map
    from ..parallel.executor import robust_variant_eval

    if journal is not None:
        for record in journal.events():
            if (
                record.get("event") == "robust-verified"
                and record.get("params") == params
            ):
                return {
                    label: dict(metrics) if metrics is not None else None
                    for label, metrics in record["detail"].items()
                }
    pairs = parallel_map(
        robust_variant_eval,
        [(task, label, params) for label in robust.variant_labels],
        workers=workers,
        oversubscribe=oversubscribe,
    )
    detail = dict(pairs)
    if journal is not None:
        journal.append("robust-verified", params=params, detail=detail)
    return detail


def _synthesize_parallel(
    *,
    tech,
    spec,
    topology,
    mode,
    synthesis_spec,
    cost_fn,
    range_factor,
    max_evaluations,
    schedule,
    seed,
    name,
    tolerant,
    budget,
    retry,
    log,
    records_before,
    lint,
    restarts,
    workers,
    memo,
    oversubscribe,
    run_dir=None,
    resume=False,
    supervisor=None,
    robust=None,
    feasibility="off",
    feasibility_report=None,
    box_override=None,
    store_dir=None,
    surrogate="off",
):
    """Fan ``restarts`` chains across the pool and merge the outcomes.

    The supervised path: chains lost to killed/hung workers are re-run
    (bounded, then quarantined), interrupts drain to a partial result,
    and — when ``run_dir`` is set — every finished chain is journaled
    write-ahead so ``resume=True`` replays it instead of re-running it.
    """
    from ..parallel import (
        ChainTask,
        derive_chain_seed,
        effective_workers,
        run_supervised_chains,
    )
    from ..runtime import faults
    from ..runtime.journal import RunJournal
    from ..runtime.stats import global_stats
    from ..runtime.supervisor import SupervisorConfig

    deadline_epoch = None
    if budget is not None:
        budget.start()
        if budget.deadline_seconds is not None:
            remaining = budget.deadline_seconds - budget.elapsed()
            # Monotonic, not wall-clock: an NTP step mid-run would
            # fire (or starve) a wall-clock deadline; CLOCK_MONOTONIC
            # is system-wide per boot, so forked pool workers share
            # the same timebase as this parent.
            deadline_epoch = time.monotonic() + max(remaining, 0.0)  # deterministic-ok: budget deadline, not result-affecting
    injector = faults.active()
    fault_specs = (
        tuple(injector.specs.values()) if injector is not None else None
    )
    fault_seed = injector.seed if injector is not None else 0
    config = supervisor if supervisor is not None else SupervisorConfig()

    store = None
    store_fingerprint = None
    store_generation = 0
    if store_dir is not None and memo is not None:
        from ..store import EvalStore

        store = EvalStore(store_dir, diagnostics=log)
        # Everything the evaluation function depends on is part of the
        # store namespace — conservative on purpose: a fingerprint that
        # is too fine costs warm hits, one that is too coarse would
        # serve a wrong result.
        store_fingerprint = _run_fingerprint(
            kind="eval-store/1",
            tech=repr(tech),
            spec=repr(spec),
            topology=repr(topology),
            mode=mode,
            synthesis_spec=repr(synthesis_spec),
            name=name,
            range_factor=range_factor,
            tolerant=tolerant,
            lint=lint,
            robust=repr(robust) if robust is not None else None,
            box=repr(_box_key(box_override)),
            quantum=memo.quantum,
        )
        # First contact opens the database; a corrupt/locked store
        # degrades the whole run to memory-only here, before any task
        # ships the store path to a worker.
        store_generation = store.generation()
        if store.disabled:
            store = None
            store_fingerprint = None
            store_generation = 0
        else:
            memo.bind_store(store, store_fingerprint)

    journal = None
    journaled_outcomes: dict[int, object] = {}
    resumed_indices: list[int] = []
    if run_dir is not None:
        journal = RunJournal(run_dir)
        fingerprint_parts = dict(
            schema=RunJournal.SCHEMA,
            tech=repr(tech),
            spec=repr(spec),
            topology=repr(topology),
            mode=mode,
            synthesis_spec=repr(synthesis_spec),
            name=name,
            range_factor=range_factor,
            max_evaluations=max_evaluations,
            schedule=repr(schedule),
            seed=seed,
            restarts=restarts,
            tolerant=tolerant,
            lint=lint,
        )
        if robust is not None:
            # Only robust runs carry the extra part, so journals written
            # before (or without) corner-aware synthesis keep resuming.
            fingerprint_parts["robust"] = repr(robust)
        if feasibility != "off":
            # Same back-compat rule: ungated runs (and every journal
            # written before the gate existed) keep their fingerprint.
            fingerprint_parts["feasibility"] = repr(
                (feasibility, _box_key(box_override))
            )
        if surrogate != "off":
            # Surrogate screening changes the trajectory, so it is part
            # of the problem identity; a bare store (surrogate off)
            # only changes speed and stays out of the fingerprint.
            fingerprint_parts["surrogate"] = surrogate
        fingerprint = _run_fingerprint(**fingerprint_parts)
        if resume:
            manifest = journal.load_manifest()
            if manifest.get("fingerprint") != fingerprint:
                raise SpecificationError(
                    f"run directory {run_dir!r} belongs to a different "
                    "synthesis problem; refusing to resume",
                    context={
                        "run_dir": run_dir,
                        "expected_fingerprint": fingerprint,
                        "found_fingerprint": manifest.get("fingerprint"),
                    },
                )
            journaled_outcomes = {
                index: outcome
                for index, outcome in journal.load_outcomes().items()
                if index < restarts
            }
            resumed_indices = sorted(journaled_outcomes)
            if memo is not None:
                warm = journal.load_memo()
                if warm is not None and warm.quantum == memo.quantum:
                    memo.merge(warm)
            if store is not None:
                # Re-run chains must train their surrogate on exactly
                # the corpus the original run saw — the journaled
                # watermark, not whatever the store holds by now.
                store_generation = int(manifest.get("store_generation", 0))
        else:
            manifest_payload = {
                "fingerprint": fingerprint,
                "name": name,
                "mode": mode,
                "seed": seed,
                "restarts": restarts,
                "chain_seeds": [
                    derive_chain_seed(seed, index)
                    for index in range(restarts)
                ],
            }
            if store is not None:
                manifest_payload["store_dir"] = str(store_dir)
                manifest_payload["store_generation"] = store_generation
            journal.initialize(manifest_payload)

    tasks = [
        ChainTask(
            tech=tech,
            spec=spec,
            topology=topology,
            mode=mode,
            synthesis_spec=synthesis_spec,
            name=name,
            range_factor=range_factor,
            max_evaluations=max_evaluations,
            schedule=schedule,
            seed=seed,
            chain_index=index,
            tolerant=tolerant,
            lint=lint,
            retry=retry,
            deadline_epoch=deadline_epoch,
            max_failures=budget.max_failures if budget is not None else None,
            per_eval_seconds=(
                budget.per_eval_seconds if budget is not None else None
            ),
            fault_specs=fault_specs,
            fault_seed=fault_seed,
            memo_quantum=memo.quantum if memo is not None else None,
            robust=robust,
            box_override=_box_key(box_override),
            store_dir=str(store_dir) if store is not None else None,
            store_fingerprint=store_fingerprint,
            store_generation=store_generation,
            surrogate=surrogate,
        )
        for index in range(restarts)
        if index not in journaled_outcomes
    ]
    n_workers = effective_workers(
        workers, max(len(tasks), 1), oversubscribe=oversubscribe
    )
    evictions_before = memo.evictions if memo is not None else 0
    store_writes_before = memo.store_writes if memo is not None else 0
    start = time.perf_counter()
    fresh_outcomes, report = run_supervised_chains(
        tasks,
        workers=workers,
        memo=memo,
        oversubscribe=oversubscribe,
        config=config,
        journal=journal,
    )
    cpu = time.perf_counter() - start
    if memo is not None:
        # Final write-behind flush (the per-chain flushes already
        # drained all but any tail merged after the last finish()).
        memo.flush_store()
    store_writes = (
        memo.store_writes - store_writes_before if memo is not None else 0
    )

    report.resumed.extend(resumed_indices)
    for index in resumed_indices:
        report.record(
            "chain-resumed", index, "outcome replayed from the run journal"
        )
    outcome_map = dict(journaled_outcomes)
    outcome_map.update(fresh_outcomes)
    outcomes = [outcome_map[index] for index in sorted(outcome_map)]

    for event in report.events:
        where = (
            f" (chain {event.chain_index})"
            if event.chain_index is not None else ""
        )
        detail = f": {event.detail}" if event.detail else ""
        log.record(
            Diagnostic(
                subsystem="synthesis.supervisor",
                severity=(
                    "info" if event.kind == "chain-resumed" else "warning"
                ),
                message=f"{name}: {event.kind}{where}{detail}",
                context={
                    "name": name,
                    "event": event.kind,
                    "chain_index": event.chain_index,
                },
            )
        )

    if not outcomes:
        # Interrupted before any chain finished, or every chain was
        # quarantined: return an honest empty shell instead of raising,
        # so callers (and table runs) keep going.
        if journal is not None:
            journal.append("run-finished", completed=0, best_cost=None)
        if store is not None:
            store.close()
        global_stats().record_run(
            evaluations=0,
            seconds=cpu,
            worker_restarts=report.worker_restarts,
            chains_quarantined=len(report.quarantined),
            chains_resumed=len(report.resumed),
            interrupted=report.interrupted,
            store_writes=store_writes,
        )
        return SynthesisResult(
            name=name,
            mode=mode,
            meets_spec=False,
            comment="no chains completed (interrupted or quarantined)",
            metrics=None,
            best_cost=FAILURE_COST,
            evaluations=0,
            cpu_seconds=cpu,
            ape_seconds=0.0,
            degraded=True,
            diagnostics=list(log.records[records_before:]),
            restarts=restarts,
            workers=n_workers,
            worker_restarts=report.worker_restarts,
            quarantined_chains=list(report.quarantined),
            resumed_chains=list(report.resumed),
            interrupted=report.interrupted,
            run_dir=run_dir,
            robust_mode=robust.mode if robust is not None else None,
            feasibility=feasibility_report,
            store_dir=str(store_dir) if store_dir is not None else None,
            store_writes=store_writes,
            surrogate=surrogate,
        )

    for outcome in outcomes:
        for diagnostic in outcome.diagnostics:
            log.record(diagnostic)
    best = min(
        outcomes, key=lambda o: (o.anneal.best_cost, o.chain_index)
    )
    result = best.anneal
    evaluations = sum(o.anneal.evaluations for o in outcomes)
    failed = sum(o.anneal.failed_evaluations for o in outcomes)
    lint_rejections = sum(o.lint_rejections for o in outcomes)
    chain_retries = sum(o.retries for o in outcomes)
    cache_hits = sum(o.cache_hits for o in outcomes)
    cache_misses = sum(o.cache_misses for o in outcomes)
    store_hits = sum(getattr(o, "store_hits", 0) for o in outcomes)
    surrogate_skips = sum(getattr(o, "surrogate_skips", 0) for o in outcomes)
    surrogate_refits = sum(
        getattr(o, "surrogate_refits", 0) for o in outcomes
    )
    if retry is not None:
        # Chains consume per-chain copies of the policy; fold their
        # retries back so shared policies keep session-wide totals.
        retry.total_retries += chain_retries
    if budget is not None:
        budget.evaluations += evaluations
        budget.failures += failed

    robust_detail = None
    worst_corner = None
    estimated_yield = None
    robust_meets = None
    corner_evals = 0
    screened = 0
    if robust is not None:
        corner_evals = sum(o.corner_evals for o in outcomes)
        screened = sum(o.screened_candidates for o in outcomes)
        if result.best_params:
            verify_task = ChainTask(
                tech=tech,
                spec=spec,
                topology=topology,
                mode=mode,
                synthesis_spec=synthesis_spec,
                name=name,
                range_factor=range_factor,
                max_evaluations=max_evaluations,
                schedule=schedule,
                seed=seed,
                chain_index=best.chain_index,
                tolerant=tolerant,
                lint=lint,
                memo_quantum=memo.quantum if memo is not None else None,
                robust=robust,
                box_override=_box_key(box_override),
            )
            robust_detail = _robust_verify(
                verify_task,
                robust,
                result.best_params,
                journal=journal,
                workers=workers,
                oversubscribe=oversubscribe,
            )
            # The verify fan-out counts whether it ran live or was
            # replayed from the journal, so resumed and uninterrupted
            # runs report identical totals.
            corner_evals += len(robust.variant_labels) - 1
            robust_cost = RobustCost(
                synthesis_spec, robust.mode, yield_target=robust.yield_target
            )
            worst_corner = robust_cost.worst_variant(robust_detail)
            estimated_yield = robust_cost.estimated_yield(robust_detail)
            robust_meets = robust_cost.meets_spec(robust_detail)
        if budget is not None:
            budget.corner_evaluations += corner_evals

    degraded_chains = [o for o in outcomes if o.anneal.degraded]
    if degraded_chains:
        log.record(
            Diagnostic(
                subsystem="synthesis.engine",
                severity="warning",
                message=(
                    f"{name}: {len(degraded_chains)} of {restarts} chains "
                    f"stopped early "
                    f"({degraded_chains[0].anneal.stop_reason}); returning "
                    "the best point so far"
                ),
                suggested_fix=(
                    "raise the budget's deadline/failure limits or reduce "
                    "max_evaluations to finish within budget"
                ),
                context={
                    "name": name,
                    "mode": mode,
                    "stop_reason": degraded_chains[0].anneal.stop_reason,
                    "degraded_chains": [
                        o.chain_index for o in degraded_chains
                    ],
                },
            )
        )
    evals_per_second = evaluations / cpu if cpu > 0 else 0.0
    cache_evictions = (
        memo.evictions - evictions_before if memo is not None else 0
    )
    log.record(
        Diagnostic(
            subsystem="synthesis.parallel",
            severity="info",
            message=(
                f"{name}: {restarts} chains on {n_workers} worker(s): "
                f"{evaluations} evaluations ({evals_per_second:.1f}/s), "
                f"cache {cache_hits} hits / {cache_misses} misses"
                + (
                    f", store {store_hits} hits / {store_writes} writes"
                    if store is not None else ""
                )
                + (
                    f", surrogate {surrogate_skips} skips"
                    if surrogate != "off" else ""
                )
            ),
            context={
                "name": name,
                "restarts": restarts,
                "workers": n_workers,
                "cache_hits": cache_hits,
                "cache_misses": cache_misses,
                "store_hits": store_hits,
                "store_writes": store_writes,
                "surrogate_skips": surrogate_skips,
            },
        )
    )
    global_stats().record_run(
        evaluations=evaluations,
        seconds=cpu,
        corner_evals=corner_evals,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        cache_evictions=cache_evictions,
        worker_restarts=report.worker_restarts,
        chains_quarantined=len(report.quarantined),
        chains_resumed=len(report.resumed),
        interrupted=report.interrupted,
        store_hits=store_hits,
        store_writes=store_writes,
        surrogate_skips=surrogate_skips,
        surrogate_refits=surrogate_refits,
    )
    if store is not None:
        store.close()
    if journal is not None:
        journal.append(
            "run-finished",
            completed=len(outcomes),
            best_chain=best.chain_index,
            best_cost=result.best_cost,
        )
    meets = (
        robust_meets
        if robust_meets is not None
        else cost_fn.meets_spec(result.best_metrics)
    )
    return SynthesisResult(
        name=name,
        mode=mode,
        meets_spec=meets,
        comment=cost_fn.describe_failure(result.best_metrics),
        metrics=result.best_metrics,
        best_cost=result.best_cost,
        evaluations=evaluations,
        cpu_seconds=cpu,
        ape_seconds=outcomes[0].ape_seconds,
        params=result.best_params,
        failed_evaluations=failed,
        lint_rejections=lint_rejections,
        retries=chain_retries,
        degraded=(
            any(o.degraded_design for o in outcomes)
            or bool(degraded_chains)
            or result.best_metrics is None
            or bool(report.quarantined)
            or report.interrupted
            or (
                robust_detail is not None
                and any(m is None for m in robust_detail.values())
            )
        ),
        diagnostics=list(log.records[records_before:]),
        restarts=restarts,
        workers=n_workers,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
        evals_per_second=evals_per_second,
        chains=[o.anneal for o in outcomes],
        worker_restarts=report.worker_restarts,
        quarantined_chains=list(report.quarantined),
        resumed_chains=list(report.resumed),
        interrupted=report.interrupted,
        run_dir=run_dir,
        cache_evictions=cache_evictions,
        robust_mode=robust.mode if robust is not None else None,
        corner_evals=corner_evals,
        screened_candidates=screened,
        worst_corner=worst_corner,
        estimated_yield=estimated_yield,
        corner_metrics=robust_detail if robust_detail is not None else {},
        feasibility=feasibility_report,
        store_dir=str(store_dir) if store_dir is not None else None,
        store_hits=store_hits,
        store_writes=store_writes,
        surrogate=surrogate,
        surrogate_skips=surrogate_skips,
        surrogate_refits=surrogate_refits,
    )
