"""The end-to-end synthesis flows of the paper's experiments.

:func:`synthesize_opamp` runs one complete experiment leg:

* ``mode='standalone'`` — ASTRX/OBLX alone: wide search intervals, a
  random starting point (the paper submitted "specifications ...
  without initial design points"),
* ``mode='ape'`` — APE followed by ASTRX/OBLX: the analytically sized
  circuit is the starting point and every interval is the APE value
  +/- 20 %.

Both legs share the same annealing schedule and evaluation budget, so
the measured difference is purely the paper's claim: the quality of the
initial design point and intervals.

The run is fault tolerant by default: failed candidate evaluations are
penalized and counted (never fatal), an infeasible APE pre-design
degrades to a coarser estimate (``mode='ape'``) with a recorded
:class:`~repro.runtime.diagnostics.Diagnostic`, and an optional
:class:`~repro.runtime.budget.EvalBudget` bounds the whole leg so it
returns "best point so far" instead of hanging.  With faults absent
and no budget/retry installed, the tolerant path is bit-for-bit
identical to the strict one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import ApeError, SpecificationError
from ..opamp import OpAmp, OpAmpSpec, OpAmpTopology, coarse_design_opamp, design_opamp
from ..runtime.budget import EvalBudget
from ..runtime.diagnostics import Diagnostic, DiagnosticLog
from ..runtime.retry import RetryPolicy
from ..technology import Technology
from .annealing import Annealer, AnnealingSchedule, AnnealResult
from .cost import CostFunction, FAILURE_COST
from .problems import OpAmpSizingProblem, ape_ranges, standalone_ranges
from .specs import SynthesisSpec, opamp_synthesis_spec

__all__ = ["SynthesisResult", "synthesize_opamp"]


@dataclass
class SynthesisResult:
    """One synthesis run's outcome (one row of Table 1 or Table 4)."""

    name: str
    mode: str
    meets_spec: bool
    comment: str
    metrics: dict[str, float] | None
    best_cost: float
    evaluations: int
    cpu_seconds: float
    ape_seconds: float
    params: dict[str, float] = field(default_factory=dict)
    #: Candidate evaluations that produced no usable metrics.
    failed_evaluations: int = 0
    #: Candidates the electrical rule checker rejected before a Newton
    #: solve was attempted (subset of ``failed_evaluations``).
    lint_rejections: int = 0
    #: DC-solver retries consumed by the run's :class:`RetryPolicy`.
    retries: int = 0
    #: True when the run fell back somewhere: the APE pre-design was
    #: relaxed, the budget stopped the annealer early, or no candidate
    #: could be evaluated at all.
    degraded: bool = False
    #: Structured failure/degradation records accumulated by the run.
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def metric(self, key: str, default: float = float("nan")) -> float:
        if self.metrics is None:
            return default
        return self.metrics.get(key, default)


def synthesize_opamp(
    tech: Technology,
    spec: OpAmpSpec,
    topology: OpAmpTopology | None = None,
    *,
    mode: str = "ape",
    synthesis_spec: SynthesisSpec | None = None,
    range_factor: float = 0.2,
    max_evaluations: int = 250,
    schedule: AnnealingSchedule | None = None,
    seed: int = 1,
    name: str = "opamp",
    tolerant: bool = True,
    budget: EvalBudget | None = None,
    retry: RetryPolicy | None = None,
    diagnostics: DiagnosticLog | None = None,
    lint: bool = True,
) -> SynthesisResult:
    """Run one APE(+/-)ASTRX/OBLX synthesis leg for an op-amp spec.

    ``tolerant`` (the default) treats every evaluation failure as a
    penalized, counted outcome; ``tolerant=False`` restores the strict
    behaviour where an unexpected :class:`ApeError` in the APE
    pre-design or the evaluation loop propagates.  ``budget``, ``retry``
    and ``diagnostics`` are optional runtime hooks — absent (and with no
    faults occurring), results are bit-for-bit identical to a plain run.
    ``lint`` (the default) pre-screens every candidate with the
    electrical rule checker so structurally singular or
    out-of-technology circuits are rejected before a Newton solve;
    rejections are counted on ``SynthesisResult.lint_rejections``.
    """
    if mode not in ("standalone", "ape"):
        raise SpecificationError(
            f"unknown synthesis mode {mode!r}",
            context={"mode": mode, "known": ("standalone", "ape")},
        )
    if synthesis_spec is None:
        synthesis_spec = opamp_synthesis_spec(spec)
    cost_fn = CostFunction(synthesis_spec)
    log = diagnostics if diagnostics is not None else DiagnosticLog()
    # Shared logs/policies may carry state from earlier runs; report
    # only this run's contribution.
    records_before = len(log.records)
    retries_before = retry.total_retries if retry is not None else 0

    # APE always provides the *structure* (ASTRX/OBLX also receives the
    # topology); in standalone mode its sizes are discarded.
    if budget is not None:
        budget.start()
    degraded_design = False
    ape_start = time.perf_counter()
    if tolerant:
        template, design_notes = coarse_design_opamp(
            tech, spec, topology, name=name
        )
        if design_notes:
            degraded_design = True
            for note in design_notes:
                log.record(note)
    else:
        template = design_opamp(tech, spec, topology, name=name)
    ape_seconds = time.perf_counter() - ape_start

    if mode == "ape":
        variables = ape_ranges(template, factor=range_factor)
        x0 = {
            v.name: min(max(template.initial_point().get(v.name, v.lo), v.lo), v.hi)
            for v in variables
        }
    else:
        variables = standalone_ranges(template)
        x0 = None  # random start inside the wide box

    problem = OpAmpSizingProblem(
        template,
        variables,
        retry=retry,
        diagnostics=log if tolerant else None,
        lint=lint,
    )

    def evaluate(params: dict[str, float]):
        metrics = problem.evaluate(params)
        return cost_fn(metrics), metrics

    def evaluate_tolerant(params: dict[str, float]):
        # The problem already absorbs the expected simulation failures;
        # this is the last line of defence against anything else in the
        # stack, so one bad candidate can never abort a whole table run.
        try:
            return evaluate(params)
        except ApeError as exc:
            log.record_exception(
                "synthesis.evaluate",
                exc,
                severity="warning",
                suggested_fix="candidate penalized; see the exception chain",
            )
            return FAILURE_COST, None

    annealer = Annealer(
        evaluate_tolerant if tolerant else evaluate,
        problem.bounds(),
        schedule=schedule,
        seed=seed,
    )
    start = time.perf_counter()
    result: AnnealResult = annealer.run(
        x0=x0, max_evaluations=max_evaluations, budget=budget
    )
    cpu = time.perf_counter() - start

    if result.degraded:
        log.record(
            Diagnostic(
                subsystem="synthesis.engine",
                severity="warning",
                message=(
                    f"{name}: annealing stopped early ({result.stop_reason}) "
                    f"after {result.evaluations} evaluations; returning the "
                    "best point so far"
                ),
                suggested_fix=(
                    "raise the budget's deadline/failure limits or reduce "
                    "max_evaluations to finish within budget"
                ),
                context={
                    "name": name,
                    "mode": mode,
                    "stop_reason": result.stop_reason,
                },
            )
        )

    meets = cost_fn.meets_spec(result.best_metrics)
    return SynthesisResult(
        name=name,
        mode=mode,
        meets_spec=meets,
        comment=cost_fn.describe_failure(result.best_metrics),
        metrics=result.best_metrics,
        best_cost=result.best_cost,
        evaluations=result.evaluations,
        cpu_seconds=cpu,
        ape_seconds=ape_seconds,
        params=result.best_params,
        failed_evaluations=result.failed_evaluations,
        lint_rejections=problem.lint_rejections,
        retries=(
            retry.total_retries - retries_before if retry is not None else 0
        ),
        degraded=(
            degraded_design
            or result.degraded
            or result.best_metrics is None
        ),
        diagnostics=list(log.records[records_before:]),
    )
