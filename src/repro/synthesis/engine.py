"""The end-to-end synthesis flows of the paper's experiments.

:func:`synthesize_opamp` runs one complete experiment leg:

* ``mode='standalone'`` — ASTRX/OBLX alone: wide search intervals, a
  random starting point (the paper submitted "specifications ...
  without initial design points"),
* ``mode='ape'`` — APE followed by ASTRX/OBLX: the analytically sized
  circuit is the starting point and every interval is the APE value
  +/- 20 %.

Both legs share the same annealing schedule and evaluation budget, so
the measured difference is purely the paper's claim: the quality of the
initial design point and intervals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import SpecificationError
from ..opamp import OpAmp, OpAmpSpec, OpAmpTopology, design_opamp
from ..technology import Technology
from .annealing import Annealer, AnnealingSchedule, AnnealResult
from .cost import CostFunction
from .problems import OpAmpSizingProblem, ape_ranges, standalone_ranges
from .specs import SynthesisSpec, opamp_synthesis_spec

__all__ = ["SynthesisResult", "synthesize_opamp"]


@dataclass
class SynthesisResult:
    """One synthesis run's outcome (one row of Table 1 or Table 4)."""

    name: str
    mode: str
    meets_spec: bool
    comment: str
    metrics: dict[str, float] | None
    best_cost: float
    evaluations: int
    cpu_seconds: float
    ape_seconds: float
    params: dict[str, float] = field(default_factory=dict)

    def metric(self, key: str, default: float = float("nan")) -> float:
        if self.metrics is None:
            return default
        return self.metrics.get(key, default)


def synthesize_opamp(
    tech: Technology,
    spec: OpAmpSpec,
    topology: OpAmpTopology | None = None,
    *,
    mode: str = "ape",
    synthesis_spec: SynthesisSpec | None = None,
    range_factor: float = 0.2,
    max_evaluations: int = 250,
    schedule: AnnealingSchedule | None = None,
    seed: int = 1,
    name: str = "opamp",
) -> SynthesisResult:
    """Run one APE(+/-)ASTRX/OBLX synthesis leg for an op-amp spec."""
    if mode not in ("standalone", "ape"):
        raise SpecificationError(f"unknown synthesis mode {mode!r}")
    if synthesis_spec is None:
        synthesis_spec = opamp_synthesis_spec(spec)
    cost_fn = CostFunction(synthesis_spec)

    # APE always provides the *structure* (ASTRX/OBLX also receives the
    # topology); in standalone mode its sizes are discarded.
    ape_start = time.perf_counter()
    template = design_opamp(tech, spec, topology, name=name)
    ape_seconds = time.perf_counter() - ape_start

    if mode == "ape":
        variables = ape_ranges(template, factor=range_factor)
        x0 = {
            v.name: min(max(template.initial_point().get(v.name, v.lo), v.lo), v.hi)
            for v in variables
        }
    else:
        variables = standalone_ranges(template)
        x0 = None  # random start inside the wide box

    problem = OpAmpSizingProblem(template, variables)

    def evaluate(params: dict[str, float]):
        metrics = problem.evaluate(params)
        return cost_fn(metrics), metrics

    annealer = Annealer(
        evaluate, problem.bounds(), schedule=schedule, seed=seed
    )
    start = time.perf_counter()
    result: AnnealResult = annealer.run(x0=x0, max_evaluations=max_evaluations)
    cpu = time.perf_counter() - start

    meets = cost_fn.meets_spec(result.best_metrics)
    return SynthesisResult(
        name=name,
        mode=mode,
        meets_spec=meets,
        comment=cost_fn.describe_failure(result.best_metrics),
        metrics=result.best_metrics,
        best_cost=result.best_cost,
        evaluations=result.evaluations,
        cpu_seconds=cpu,
        ape_seconds=ape_seconds,
        params=result.best_params,
    )
