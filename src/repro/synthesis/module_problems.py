"""Module-level sizing problems (the paper's Table 5 workloads).

The unknowns of a level-4 module are its op-amps' device geometries
plus its passive values; candidate evaluation builds the module's
verification bench and measures module-level figures (gain, corner
frequency, centre frequency, delay) with short AC sweeps.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable

from ..devices import Capacitor as PassiveCap, Resistor as PassiveRes
from ..errors import ApeError, SimulationError
from ..modules.base import AnalogModule
from ..spice import ac_analysis, dc_operating_point, find_crossing
from ..spice.ac import log_frequencies
from .problems import (
    CC_HARD,
    SizingProblem,
    Variable,
    W_HARD,
    L_HARD_MAX,
    parameterized_opamp,
)

__all__ = [
    "ModuleSizingProblem",
    "module_ranges",
    "clone_module",
    "measure_lowpass",
    "measure_bandpass",
    "measure_gain_bandwidth",
]

#: Hard passive bounds for the search.
R_HARD = (1e2, 10e6)
C_HARD = (1e-13, 1e-6)


def _module_point(module: AnalogModule) -> dict[str, float]:
    """Flat parameter dict of every unknown in a module."""
    point: dict[str, float] = {}
    for role, amp in module.opamps.items():
        for key, value in amp.initial_point().items():
            if (
                key.endswith(".w")
                or key.endswith(".l")
                or key in ("cc", "r.ref", "r.bias")
            ):
                point[f"{role}:{key}"] = value
    for rname, res in module.resistors.items():
        point[f"R:{rname}"] = res.value
    for cname, cap in module.capacitors.items():
        point[f"C:{cname}"] = cap.value
    return point


def module_ranges(
    module: AnalogModule, mode: str = "ape", factor: float = 0.2
) -> list[Variable]:
    """Search intervals for a module's unknowns.

    ``mode='ape'``: each APE value +/- ``factor``; ``mode='standalone'``:
    the full hard boxes.
    """
    if mode not in ("ape", "standalone"):
        raise ApeError(f"unknown range mode {mode!r}")
    out: list[Variable] = []
    from .problems import RBIAS_HARD

    for key, value in _module_point(module).items():
        if key.startswith("R:"):
            hard = R_HARD
        elif key.startswith("C:") or key.endswith(":cc"):
            hard = C_HARD if key.startswith("C:") else CC_HARD
        elif key.endswith(":r.ref") or key.endswith(":r.bias"):
            hard = RBIAS_HARD
        elif key.endswith(".w"):
            hard = W_HARD
        else:  # .l
            hard = (module.tech.l_min, L_HARD_MAX)
        if mode == "ape":
            centred = min(max(value, hard[0]), hard[1])
            lo = max(centred * (1 - factor), hard[0])
            hi = min(centred * (1 + factor), hard[1])
        else:
            lo, hi = hard
        out.append(Variable(key, lo, hi))
    return out


def clone_module(module: AnalogModule, params: dict[str, float]) -> AnalogModule:
    """A copy of ``module`` with parameter overrides applied."""
    per_amp: dict[str, dict[str, float]] = {r: {} for r in module.opamps}
    new_res = dict(module.resistors)
    new_caps = dict(module.capacitors)
    for key, value in params.items():
        if key.startswith("R:"):
            rname = key[2:]
            if rname in new_res:
                new_res[rname] = PassiveRes(
                    value=value, area=module.tech.resistor_area(value)
                )
        elif key.startswith("C:"):
            cname = key[2:]
            if cname in new_caps:
                new_caps[cname] = PassiveCap(
                    value=value, area=module.tech.capacitor_area(value)
                )
        elif ":" in key:
            role, subkey = key.split(":", 1)
            if role in per_amp:
                per_amp[role][subkey] = value
    new_amps = {
        role: parameterized_opamp(amp, per_amp[role])
        for role, amp in module.opamps.items()
    }
    return replace(
        module, opamps=new_amps, resistors=new_res, capacitors=new_caps
    )


class ModuleSizingProblem(SizingProblem):
    """Anneal a module's unknowns against a measurement function.

    ``measure(circuit, nodes)`` returns the metric dict (or raises
    :class:`SimulationError`); it runs against the module's own
    verification bench rebuilt for every candidate.
    """

    def __init__(
        self,
        module: AnalogModule,
        variables: list[Variable],
        measure: Callable[[object, dict[str, str]], dict[str, float]],
    ) -> None:
        self.module = module
        self._variables = variables
        self.measure = measure

    @property
    def variables(self) -> list[Variable]:
        return self._variables

    def evaluate(self, params: dict[str, float]) -> dict[str, float] | None:
        try:
            candidate = clone_module(self.module, params)
            ckt, nodes = candidate.verification_circuit()
            metrics = self.measure(ckt, nodes)
            metrics.setdefault("gate_area", ckt.total_gate_area())
            return metrics
        except (ApeError, SimulationError):
            return None


def measure_gain_bandwidth(
    f_probe: float, f_lo: float, f_hi: float, points: int = 8
) -> Callable:
    """Measure low-frequency gain and -3 dB bandwidth at ``out``."""

    def measure(ckt, nodes) -> dict[str, float]:
        op = dc_operating_point(ckt)
        freqs = log_frequencies(f_lo, f_hi, points)
        ac = ac_analysis(ckt, op=op, frequencies=freqs)
        mag = ac.magnitude(nodes["out"])
        gain = float(mag[0])
        try:
            bw = find_crossing(freqs, mag, gain / math.sqrt(2.0))
        except SimulationError:
            bw = float(f_hi)  # flat to the edge: at least this wide
        return {"gain": gain, "bandwidth": bw}

    return measure


def measure_lowpass(f_lo: float, f_hi: float, points: int = 10) -> Callable:
    """Measure passband gain, f(-3 dB) and f(-20 dB) at ``out``."""

    def measure(ckt, nodes) -> dict[str, float]:
        op = dc_operating_point(ckt)
        freqs = log_frequencies(f_lo, f_hi, points)
        ac = ac_analysis(ckt, op=op, frequencies=freqs)
        mag = ac.magnitude(nodes["out"])
        gain = float(mag[0])
        metrics = {"gain": gain}
        try:
            metrics["f_3db"] = find_crossing(freqs, mag, gain / math.sqrt(2.0))
        except SimulationError:
            metrics["f_3db"] = math.nan
        try:
            metrics["f_20db"] = find_crossing(freqs, mag, gain / 10.0)
        except SimulationError:
            metrics["f_20db"] = math.nan
        return metrics

    return measure


def measure_bandpass(f_lo: float, f_hi: float, points: int = 10) -> Callable:
    """Measure centre frequency, centre gain and -3 dB bandwidth."""
    import numpy as np

    def measure(ckt, nodes) -> dict[str, float]:
        op = dc_operating_point(ckt)
        freqs = log_frequencies(f_lo, f_hi, points)
        ac = ac_analysis(ckt, op=op, frequencies=freqs)
        mag = ac.magnitude(nodes["out"])
        k0 = int(np.argmax(mag))
        peak = float(mag[k0])
        metrics = {"gain": peak, "f0": float(freqs[k0])}
        try:
            lo = find_crossing(
                freqs[: k0 + 1], mag[: k0 + 1], peak / math.sqrt(2.0)
            )
            hi = find_crossing(freqs[k0:], mag[k0:], peak / math.sqrt(2.0))
            metrics["bandwidth"] = hi - lo
        except SimulationError:
            metrics["bandwidth"] = math.nan
        return metrics

    return measure
