"""Process variation: corner models and Monte Carlo mismatch.

The paper sizes at the nominal process; real adoption of an estimator
needs to know how the sized circuit behaves across fab corners (SS/FF/
SF/FS) and under local device mismatch (Pelgrom scaling).  This package
derives corner technologies from any nominal :class:`Technology` and
runs Monte Carlo samples of any circuit with per-device threshold/beta
perturbations.
"""

from .corners import (
    CORNER_NAMES,
    CornerSpec,
    derive_corner,
    corner_sweep,
    parse_corner,
    parse_corner_list,
)
from .montecarlo import (
    MismatchModel,
    MonteCarloResult,
    derive_sample_seed,
    monte_carlo,
    perturbed_circuit,
    opamp_offset_spread,
)

__all__ = [
    "CORNER_NAMES",
    "CornerSpec",
    "parse_corner",
    "parse_corner_list",
    "derive_corner",
    "corner_sweep",
    "MismatchModel",
    "MonteCarloResult",
    "derive_sample_seed",
    "monte_carlo",
    "perturbed_circuit",
    "opamp_offset_spread",
]
