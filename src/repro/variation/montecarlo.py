"""Monte Carlo mismatch analysis.

Local (device-to-device) variation follows the Pelgrom law: the
standard deviation of a matched-pair parameter scales as
``A / sqrt(W L)``.  Each sample clones the circuit with every MOSFET's
model perturbed in threshold voltage and current factor, then runs a
caller-supplied measurement; the result collects per-sample metrics
with mean/sigma/yield summaries.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field, replace
from typing import Callable

from ..errors import ApeError, SimulationError
from ..spice import Circuit, Mosfet

__all__ = [
    "MismatchModel",
    "MonteCarloResult",
    "derive_sample_seed",
    "perturbed_circuit",
    "monte_carlo",
    "opamp_offset_spread",
]

#: Weyl increment (golden-ratio based), the same stride
#: :func:`repro.parallel.derive_chain_seed` uses per chain: consecutive
#: sample indices land far apart in seed space and sample 0 keeps the
#: master seed itself.
_SEED_STRIDE = 0x9E3779B97F4A7C15


def derive_sample_seed(master_seed: int, sample_index: int) -> int:
    """Deterministic per-sample seed; sample 0 is the master seed.

    Sample ``i``'s mismatch realization depends only on
    ``(master_seed, i)`` — never on how many samples ran before it, in
    which process, or in what order.  That makes chains x samples
    compose reproducibly: a Monte Carlo sample evaluated inside any
    annealing chain (or replayed from a run journal) perturbs the
    circuit identically everywhere.
    """
    if sample_index == 0:
        return master_seed
    return (master_seed + _SEED_STRIDE * sample_index) % 2**63


@dataclass(frozen=True)
class MismatchModel:
    """Pelgrom coefficients (typical 0.5 um CMOS values)."""

    #: Threshold mismatch coefficient [V m] (sigma_VT = a_vt / sqrt(WL)).
    a_vt: float = 10e-3 * 1e-6
    #: Current-factor mismatch coefficient [m] (relative sigma).
    a_beta: float = 0.01 * 1e-6

    def sigma_vt(self, w: float, l: float) -> float:
        return self.a_vt / math.sqrt(w * l)

    def sigma_beta(self, w: float, l: float) -> float:
        return self.a_beta / math.sqrt(w * l)


@dataclass
class MonteCarloResult:
    """Per-sample metrics plus summary statistics."""

    samples: list[dict[str, float]] = field(default_factory=list)
    failures: int = 0

    def values(self, key: str) -> list[float]:
        return [s[key] for s in self.samples if key in s]

    def mean(self, key: str) -> float:
        return statistics.fmean(self.values(key))

    def sigma(self, key: str) -> float:
        vals = self.values(key)
        return statistics.stdev(vals) if len(vals) > 1 else 0.0

    def yield_fraction(self, predicate: Callable[[dict[str, float]], bool]) -> float:
        """Fraction of all runs (including failures) passing a check."""
        total = len(self.samples) + self.failures
        if total == 0:
            raise ApeError("no Monte Carlo samples")
        passing = sum(1 for s in self.samples if predicate(s))
        return passing / total


def perturbed_circuit(
    circuit: Circuit,
    rng: random.Random,
    mismatch: MismatchModel | None = None,
) -> Circuit:
    """A copy of ``circuit`` with every MOSFET's model perturbed.

    Threshold shifts are additive Gaussians with Pelgrom sigma; the
    current factor is scaled by ``1 + N(0, sigma_beta)``.  The shift is
    applied toward weaker conduction when it would flip the sign of
    VTO (pathological only for near-zero-VT models).
    """
    if mismatch is None:
        mismatch = MismatchModel()
    dup = circuit.copy(title=f"{circuit.title}-mc")
    for element in circuit:
        if not isinstance(element, Mosfet):
            continue
        model = element.model
        d_vt = rng.gauss(0.0, mismatch.sigma_vt(element.w, element.l))
        d_beta = rng.gauss(0.0, mismatch.sigma_beta(element.w, element.l))
        # The shift applies to the threshold *magnitude* so the model's
        # polarity constraint (NMOS VTO > 0 > PMOS VTO) is preserved.
        sign = 1.0 if model.vto >= 0 else -1.0
        new_vto = sign * max(abs(model.vto) + d_vt, 1e-3)
        new_model = model.with_(
            vto=new_vto,
            kp=model.kp_effective * max(1.0 + d_beta, 0.01),
        )
        dup.replace(replace(element, model=new_model))
    return dup


def monte_carlo(
    circuit: Circuit,
    measure: Callable[[Circuit], dict[str, float]],
    *,
    n: int = 50,
    seed: int = 1,
    mismatch: MismatchModel | None = None,
) -> MonteCarloResult:
    """Run ``measure`` over ``n`` mismatch samples of ``circuit``.

    Samples whose measurement raises a simulation error count as
    ``failures`` (they matter for yield).  Sample ``i`` draws from a
    dedicated :class:`random.Random` seeded
    ``derive_sample_seed(seed, i)``, so each realization is a pure
    function of ``(seed, i)`` — not of the preceding samples — and the
    same sample evaluated from different workers or resumed runs is
    bit-for-bit identical.
    """
    if n < 1:
        raise ApeError("need at least one Monte Carlo sample")
    result = MonteCarloResult()
    for index in range(n):
        sample = perturbed_circuit(
            circuit, random.Random(derive_sample_seed(seed, index)), mismatch
        )
        try:
            result.samples.append(measure(sample))
        except (ApeError, SimulationError):
            result.failures += 1
    return result


def opamp_offset_spread(
    opamp,
    *,
    n: int = 30,
    seed: int = 1,
    mismatch: MismatchModel | None = None,
) -> MonteCarloResult:
    """Input-offset distribution of a sized op-amp under mismatch.

    Each sample rebuilds the open-loop bench with perturbed devices and
    finds the input offset that centres the output — the standard
    Monte Carlo offset simulation.
    """
    from ..opamp.benches import open_loop_bench
    from ..spice.analysis import balance_differential

    if mismatch is None:
        mismatch = MismatchModel()
    result = MonteCarloResult()
    for index in range(n):
        # One mismatch realization, shared by all bench rebuilds inside
        # the balancing search; derived per-sample so realization i is
        # the same no matter how many samples ran before it.
        sample_seed = derive_sample_seed(seed, index)

        def build(v_diff: float) -> Circuit:
            bench = open_loop_bench(opamp, v_diff=v_diff)
            return perturbed_circuit(
                bench, random.Random(sample_seed), mismatch
            )

        try:
            v_ofs, _, op = balance_differential(
                build, "out", target=0.0, v_span=0.5
            )
            result.samples.append(
                {"offset": v_ofs, "out": op.v("out")}
            )
        except (ApeError, SimulationError):
            result.failures += 1
    return result
