"""Fab corner derivation.

Classic five-corner methodology: per-polarity "slow" (higher |VT|,
lower mobility) and "fast" (lower |VT|, higher mobility) device models,
combined as TT / SS / FF / SF / FS (first letter NMOS, second PMOS).
The shift magnitudes are the generic +/-3-sigma values foundries quote
for these nodes: |VT| +/- 10 %, KP -/+ 10 %.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from ..errors import TechnologyError
from ..technology import MosModelParams, Technology

__all__ = ["CORNER_NAMES", "derive_corner", "corner_sweep"]

#: Recognised corner names (NMOS letter first).
CORNER_NAMES = ("tt", "ss", "ff", "sf", "fs")

#: 3-sigma fractional shifts.
VTO_SHIFT = 0.10
KP_SHIFT = 0.10


def _shift_model(model: MosModelParams, speed: str) -> MosModelParams:
    if speed == "t":
        return model
    sign = 1.0 if speed == "s" else -1.0  # slow: |VT| up, KP down
    kp_eff = model.kp_effective
    return model.with_(
        vto=model.vto * (1.0 + sign * VTO_SHIFT),
        kp=kp_eff * (1.0 - sign * KP_SHIFT),
    )


def derive_corner(tech: Technology, corner: str) -> Technology:
    """A copy of ``tech`` at the named corner (``tt``/``ss``/``ff``/
    ``sf``/``fs``)."""
    corner = corner.lower()
    if corner not in CORNER_NAMES:
        raise TechnologyError(
            f"unknown corner {corner!r}; available: {', '.join(CORNER_NAMES)}"
        )
    n_speed, p_speed = corner[0], corner[1]
    return replace(
        tech,
        name=f"{tech.name}-{corner}",
        nmos=_shift_model(tech.nmos, n_speed),
        pmos=_shift_model(tech.pmos, p_speed),
    )


def corner_sweep(
    tech: Technology,
    evaluate: Callable[[Technology], dict[str, float]],
    corners: tuple[str, ...] = CORNER_NAMES,
) -> dict[str, dict[str, float]]:
    """Run ``evaluate`` at each corner; returns metrics keyed by corner.

    ``evaluate`` typically re-sizes (or re-simulates) a design at the
    shifted technology and returns the figures of interest.
    """
    return {corner: evaluate(derive_corner(tech, corner)) for corner in corners}
