"""Fab corner derivation.

Classic five-corner methodology: per-polarity "slow" (higher |VT|,
lower mobility) and "fast" (lower |VT|, higher mobility) device models,
combined as TT / SS / FF / SF / FS (first letter NMOS, second PMOS).
The shift magnitudes are the generic +/-3-sigma values foundries quote
for these nodes: |VT| +/- 10 %, KP -/+ 10 %.

Beyond the speed letters, a corner may carry *environmental* axes in
the canonical ``"SS@-40C,4.5V"`` notation: a junction temperature
(``C`` suffix, applied through :func:`repro.technology.at_temperature`)
and a total rail-to-rail supply span (``V`` suffix, scaling both rails
proportionally).  :func:`parse_corner` turns the string into a
:class:`CornerSpec`; :func:`derive_corner` accepts either form and
returns the shifted :class:`Technology`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from ..errors import TechnologyError
from ..technology import MosModelParams, Technology
from ..technology.temperature import at_temperature

__all__ = [
    "CORNER_NAMES",
    "CornerSpec",
    "parse_corner",
    "parse_corner_list",
    "derive_corner",
    "corner_sweep",
]

#: Recognised corner names (NMOS letter first).
CORNER_NAMES = ("tt", "ss", "ff", "sf", "fs")

#: 3-sigma fractional shifts.
VTO_SHIFT = 0.10
KP_SHIFT = 0.10

#: A bare environmental modifier: a signed number followed by the axis
#: suffix (``C`` = junction temperature, ``V`` = rail-to-rail supply).
_MODIFIER = re.compile(r"^[+-]?\d+(?:\.\d+)?[cv]$", re.IGNORECASE)


@dataclass(frozen=True)
class CornerSpec:
    """One corner: process speed plus optional environmental axes.

    ``temp_c`` is the junction temperature in Celsius (``None`` keeps
    the model card's nominal 27 C); ``supply_v`` is the total
    rail-to-rail span in volts (``None`` keeps the technology's nominal
    rails).  ``canonical`` renders the ``"ss@-40C,4.5V"`` form that
    :func:`parse_corner` round-trips.
    """

    speed: str
    temp_c: float | None = None
    supply_v: float | None = None

    def __post_init__(self) -> None:
        if self.speed not in CORNER_NAMES:
            raise TechnologyError(
                f"unknown corner {self.speed!r}; available: "
                f"{', '.join(CORNER_NAMES)}"
            )
        if self.supply_v is not None and self.supply_v <= 0:
            raise TechnologyError(
                f"corner supply span must be positive, got {self.supply_v}"
            )

    @property
    def canonical(self) -> str:
        mods = []
        if self.temp_c is not None:
            mods.append(f"{self.temp_c:g}C")
        if self.supply_v is not None:
            mods.append(f"{self.supply_v:g}V")
        if not mods:
            return self.speed
        return f"{self.speed}@{','.join(mods)}"


def parse_corner(text: "str | CornerSpec") -> CornerSpec:
    """Parse the canonical corner notation into a :class:`CornerSpec`.

    ``"SS"`` is a plain speed corner; ``"SS@-40C"``, ``"SS@4.5V"`` and
    ``"SS@-40C,4.5V"`` attach temperature and/or supply axes (order
    free, case-insensitive).  Unknown speed letters or modifier
    suffixes raise :class:`TechnologyError` listing what is known.
    """
    if isinstance(text, CornerSpec):
        return text
    name, _, modifier_text = text.strip().partition("@")
    speed = name.strip().lower()
    if speed not in CORNER_NAMES:
        raise TechnologyError(
            f"unknown corner {speed!r}; available: {', '.join(CORNER_NAMES)}"
        )
    temp_c: float | None = None
    supply_v: float | None = None
    if modifier_text:
        for token in modifier_text.split(","):
            token = token.strip()
            if not _MODIFIER.match(token):
                raise TechnologyError(
                    f"bad corner modifier {token!r} in {text!r}; expected "
                    "<number>C (junction temperature) or <number>V "
                    "(rail-to-rail supply span), e.g. 'SS@-40C,4.5V'"
                )
            value = float(token[:-1])
            if token[-1].lower() == "c":
                temp_c = value
            else:
                supply_v = value
    return CornerSpec(speed=speed, temp_c=temp_c, supply_v=supply_v)


def parse_corner_list(text: "str | Iterable[str]") -> tuple[CornerSpec, ...]:
    """Parse a comma-separated corner list such as CLI ``--corners``.

    The list separator and the modifier separator are both commas, so a
    fragment that is *only* an environmental modifier (``"4.5V"``)
    attaches to the preceding corner: ``"TT,SS@-40C,4.5V,FF"`` parses
    as three corners — TT, SS at -40 C with a 4.5 V supply, and FF.
    """
    if isinstance(text, str):
        fragments = [f.strip() for f in text.split(",") if f.strip()]
        merged: list[str] = []
        for fragment in fragments:
            if merged and _MODIFIER.match(fragment) and "@" in merged[-1]:
                merged[-1] += f",{fragment}"
            else:
                merged.append(fragment)
    else:
        merged = [str(f) for f in text]
    if not merged:
        raise TechnologyError("empty corner list")
    return tuple(parse_corner(fragment) for fragment in merged)


def _shift_model(model: MosModelParams, speed: str) -> MosModelParams:
    if speed == "t":
        return model
    sign = 1.0 if speed == "s" else -1.0  # slow: |VT| up, KP down
    kp_eff = model.kp_effective
    return model.with_(
        vto=model.vto * (1.0 + sign * VTO_SHIFT),
        kp=kp_eff * (1.0 - sign * KP_SHIFT),
    )


def derive_corner(tech: Technology, corner: "str | CornerSpec") -> Technology:
    """A copy of ``tech`` at the named corner.

    Plain speed corners (``tt``/``ss``/``ff``/``sf``/``fs``) keep the
    historical behaviour and naming (``<tech>-<corner>``).  Extended
    corners (``"SS@-40C,4.5V"`` or a :class:`CornerSpec`) additionally
    re-derive the models at the junction temperature and scale both
    supply rails to the requested rail-to-rail span.
    """
    spec = parse_corner(corner)
    n_speed, p_speed = spec.speed[0], spec.speed[1]
    shifted = replace(
        tech,
        name=f"{tech.name}-{spec.speed}",
        nmos=_shift_model(tech.nmos, n_speed),
        pmos=_shift_model(tech.pmos, p_speed),
    )
    if spec.temp_c is not None:
        shifted = at_temperature(shifted, spec.temp_c)
    if spec.supply_v is not None:
        nominal_span = tech.vdd - tech.vss
        scale = spec.supply_v / nominal_span
        shifted = replace(
            shifted,
            name=f"{shifted.name},{spec.supply_v:g}V",
            vdd=tech.vdd * scale,
            vss=tech.vss * scale,
        )
    return shifted


def corner_sweep(
    tech: Technology,
    evaluate: Callable[[Technology], dict[str, float]],
    corners: "tuple[str | CornerSpec, ...]" = CORNER_NAMES,
) -> dict[str, dict[str, float]]:
    """Run ``evaluate`` at each corner; returns metrics keyed by corner.

    ``evaluate`` typically re-sizes (or re-simulates) a design at the
    shifted technology and returns the figures of interest.  Keys are
    the canonical corner names (``"ss"``, ``"ss@-40C,4.5V"``, ...).
    """
    out: dict[str, dict[str, float]] = {}
    for corner in corners:
        spec = parse_corner(corner)
        out[spec.canonical] = evaluate(derive_corner(tech, spec))
    return out
