"""The APE facade: one entry point over the whole hierarchy.

"APE permits a circuit designer or a circuit synthesis tool to estimate
several characteristics of analog circuits ... at an early stage of the
design process" (paper §1).  The class below exposes the four levels of
Figure 2 through uniform ``estimate_*`` methods; every call returns a
sized object carrying a
:class:`~repro.components.PerformanceEstimate`.

>>> from repro import AnalogPerformanceEstimator
>>> ape = AnalogPerformanceEstimator("generic-0.5um")
>>> amp = ape.estimate_opamp(gain=200, ugf=1.3e6, ibias=1e-6, cl=10e-12)
>>> amp.estimate.gain >= 200
True
"""

from __future__ import annotations

import math
from typing import Any

from .components import (
    CascodeCurrentSource,
    Component,
    CurrentMirror,
    DcVoltageBias,
    DiffCmos,
    DiffNmos,
    GainCmos,
    GainCmosH,
    GainNmos,
    SourceFollower,
    WilsonCurrentSource,
)
from .devices import SizedMos, size_for_gm_id, size_for_id_vov
from .errors import EstimationError, SizingError, TopologyError
from .runtime import faults
from .runtime.diagnostics import Diagnostic, DiagnosticLog
from .modules import (
    AnalogModule,
    AudioAmplifier,
    Comparator,
    FlashAdc,
    InstrumentationAmplifier,
    Integrator,
    InvertingAmplifier,
    R2rDac,
    SallenKeyBandPass,
    SallenKeyLowPass,
    SampleHold,
    ScIntegrator,
    SigmaDeltaModulator,
    SummingAmplifier,
)
from .opamp import OpAmp, OpAmpSpec, OpAmpTopology, coarse_design_opamp, design_opamp
from .technology import MosPolarity, Technology, technology_by_name

__all__ = ["AnalogPerformanceEstimator"]

_COMPONENT_KINDS = {
    "dcvolt": DcVoltageBias,
    "currmirr": CurrentMirror,
    "mirror": CurrentMirror,
    "cascode": CascodeCurrentSource,
    "wilson": WilsonCurrentSource,
    "gainnmos": GainNmos,
    "gaincmos": GainCmos,
    "gaincmosh": GainCmosH,
    "follower": SourceFollower,
    "diffnmos": DiffNmos,
    "diffcmos": DiffCmos,
}

_MODULE_KINDS = {
    "inverting_amplifier": InvertingAmplifier,
    "adder": SummingAmplifier,
    "audio_amplifier": AudioAmplifier,
    "integrator": Integrator,
    "comparator": Comparator,
    "sample_hold": SampleHold,
    "lowpass_filter": SallenKeyLowPass,
    "bandpass_filter": SallenKeyBandPass,
    "flash_adc": FlashAdc,
    "r2r_dac": R2rDac,
    "instrumentation_amplifier": InstrumentationAmplifier,
    "sc_integrator": ScIntegrator,
    "sigma_delta": SigmaDeltaModulator,
}


class AnalogPerformanceEstimator:
    """Hierarchical analog performance estimator (the paper's APE tool).

    ``tolerant=True`` turns estimation failures into graceful
    degradation: an infeasible level-2/3 request falls back to a
    coarser analytical estimate (relaxed gain target, added gain
    stage) instead of raising, and every fallback is recorded as a
    :class:`~repro.runtime.diagnostics.Diagnostic` in
    :attr:`diagnostics` (and on the returned object's ``diagnostics``
    attribute).  The default is strict — identical to the historical
    behaviour.
    """

    def __init__(
        self,
        technology: Technology | str = "generic-0.5um",
        *,
        tolerant: bool = False,
        diagnostics: DiagnosticLog | None = None,
    ) -> None:
        if isinstance(technology, str):
            technology = technology_by_name(technology)
        self.tech = technology
        self.tolerant = tolerant
        self.diagnostics = diagnostics if diagnostics is not None else DiagnosticLog()

    # ----------------------------------------------------------- level 1

    def estimate_transistor(
        self,
        *,
        gm: float | None = None,
        ids: float,
        vov: float | None = None,
        polarity: MosPolarity = MosPolarity.NMOS,
        **kwargs: Any,
    ) -> SizedMos:
        """Size a transistor from (gm, Id) or (Id, Vov) — paper §4.1."""
        model = self.tech.model(polarity)
        if gm is not None:
            return size_for_gm_id(model, self.tech, gm=gm, ids=ids, **kwargs)
        if vov is not None:
            return size_for_id_vov(model, self.tech, ids=ids, vov=vov, **kwargs)
        raise EstimationError("specify gm or vov alongside ids")

    # ----------------------------------------------------------- level 2

    def estimate_component(self, kind: str, **spec: Any) -> Component:
        """Size a basic analog component by library name — paper §4.2.

        Kinds: ``dcvolt``, ``currmirr``/``mirror``, ``cascode``,
        ``wilson``, ``gainnmos``, ``gaincmos``, ``gaincmosh``,
        ``follower``, ``diffnmos``, ``diffcmos``.
        """
        try:
            cls = _COMPONENT_KINDS[kind.lower()]
        except KeyError:
            raise TopologyError(
                f"unknown component kind {kind!r}; available: "
                f"{', '.join(sorted(_COMPONENT_KINDS))}"
            ) from None
        if not self.tolerant:
            faults.check("estimator.component")
            return cls.design(self.tech, **spec)
        try:
            faults.check("estimator.component")
            return cls.design(self.tech, **spec)
        except (EstimationError, SizingError) as exc:
            return self._coarse_component(cls, kind, spec, exc)

    def _coarse_component(
        self, cls: type, kind: str, spec: dict[str, Any], exc: Exception
    ) -> Component:
        """Graceful degradation for an infeasible level-2 request.

        Retries unchanged (covers transient failures), then repeatedly
        halves the gain-like entry of the spec; the first coarser
        estimate that sizes is returned with the degradation recorded.
        """
        notes: list[Diagnostic] = [
            self.diagnostics.record_exception(
                "estimator.component",
                exc,
                severity="warning",
                suggested_fix=(
                    "exact sizing infeasible; a coarser analytical "
                    "estimate will be substituted"
                ),
                context={"kind": kind},
            )
        ]
        gain_key = next(
            (k for k in ("gain", "adm") if k in spec and spec[k]), None
        )
        candidates: list[tuple[str, dict[str, Any]]] = [
            ("retry unchanged", dict(spec))
        ]
        if gain_key is not None:
            relaxed = dict(spec)
            for _ in range(6):
                relaxed = dict(relaxed)
                relaxed[gain_key] = relaxed[gain_key] / 2.0  # type: ignore[operator]
                candidates.append(
                    (
                        f"halve {gain_key} to {relaxed[gain_key]:g}",
                        relaxed,
                    )
                )
        last_exc: Exception = exc
        for description, candidate in candidates:
            try:
                component = cls.design(self.tech, **candidate)
            except (EstimationError, SizingError) as retry_exc:
                last_exc = retry_exc
                continue
            notes.append(
                self.diagnostics.record(
                    Diagnostic(
                        subsystem="estimator.component",
                        severity="warning",
                        message=f"{kind}: degraded estimate after: {description}",
                        suggested_fix=(
                            "relax the failing specification or choose a "
                            "higher-capability component kind"
                        ),
                        context={"kind": kind, **(
                            {"requested_" + gain_key: spec[gain_key],
                             "delivered_" + gain_key: candidate[gain_key]}
                            if gain_key is not None else {}
                        )},
                    )
                )
            )
            component.diagnostics = notes  # type: ignore[attr-defined]
            return component
        raise last_exc

    # ----------------------------------------------------------- level 3

    def estimate_opamp(
        self,
        *,
        gain: float,
        ugf: float,
        ibias: float = 1e-6,
        cl: float = 10e-12,
        area: float = math.inf,
        slew_rate: float = 0.0,
        current_source: str = "mirror",
        diff_pair: str = "cmos",
        gain_stage: bool | None = None,
        output_buffer: bool = False,
        z_load: float = math.inf,
        name: str = "opamp",
    ) -> OpAmp:
        """Size a complete op-amp from its specification — paper §4.3."""
        spec = OpAmpSpec(
            gain=gain, ugf=ugf, area=area, ibias=ibias, cl=cl,
            slew_rate=slew_rate,
        )
        topology = OpAmpTopology(
            current_source=current_source,
            diff_pair=diff_pair,
            gain_stage=gain_stage,
            output_buffer=output_buffer,
            z_load=z_load,
        )
        if not self.tolerant:
            return design_opamp(self.tech, spec, topology, name=name)
        amp, notes = coarse_design_opamp(self.tech, spec, topology, name=name)
        if notes:
            for note in notes:
                self.diagnostics.record(note)
            amp.diagnostics = notes  # type: ignore[attr-defined]
        return amp

    # ----------------------------------------------------------- level 4

    def estimate_module(self, kind: str, **spec: Any) -> AnalogModule:
        """Size an analog library module by name — paper §4.4.

        Kinds: ``inverting_amplifier``, ``adder``, ``audio_amplifier``,
        ``integrator``, ``comparator``, ``sample_hold``,
        ``lowpass_filter``, ``bandpass_filter``, ``flash_adc``,
        ``r2r_dac``.
        """
        try:
            cls = _MODULE_KINDS[kind.lower()]
        except KeyError:
            raise TopologyError(
                f"unknown module kind {kind!r}; available: "
                f"{', '.join(sorted(_MODULE_KINDS))}"
            ) from None
        return cls.design(self.tech, **spec)

    # ------------------------------------------------------------ export

    def initial_point(self, opamp: OpAmp) -> dict[str, float]:
        """The sized design point for seeding a synthesis tool."""
        return opamp.initial_point()
