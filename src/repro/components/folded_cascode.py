"""Folded-cascode differential amplifier (library extension).

The paper closes §6 noting the hierarchy "allows to easily add new
components ... making use of lower levels in the structure"; this
module exercises that claim with the classic folded-cascode OTA — the
topology designers reach for when a mirror-loaded pair's gain is not
enough but a second stage (and its compensation) is unwelcome.

Structure (NMOS input):

* input pair M1/M2, tail current ``Itail`` (port, like DiffCmos),
* PMOS folding sources M4/M5 from VDD carrying ``Itail/2 + Ibranch``,
* PMOS cascodes M6/M7 from the folding nodes to the outputs,
* NMOS cascode current mirror M8-M11 as the load; single-ended output.

Gain ~ gm1 * [ (gm6 ro6 (ro4 || ro2)) || (gm8 ro8 ro10) ] — one to two
orders beyond the simple mirror load, with a single high-impedance
node (load-compensated, UGF = gm1 / 2 pi CL).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..devices import size_for_id_vov
from ..errors import EstimationError
from ..spice import Circuit
from ..technology import Technology
from .base import Component, PerformanceEstimate
from .current_sources import DEFAULT_MIRROR_VOV
from .differential import _tail_conductance
from .gain_stages import DEFAULT_CL

__all__ = ["FoldedCascodeDiff"]


@dataclass
class FoldedCascodeDiff(Component):
    """A sized folded-cascode stage.

    Ports for :meth:`place`: ``inp``, ``inn``, ``out``, ``tail``,
    ``vdd``, ``vss`` plus three bias-voltage ports ``bias_p``,
    ``bias_pc``, ``bias_nc`` (the fold sources' and both cascodes'
    gates).  The bias levels to apply are exposed as attributes.
    """

    v_cm_in: float = 0.0
    tail_current: float = 0.0
    branch_current: float = 0.0
    v_bias_p: float = 0.0
    v_bias_pc: float = 0.0
    v_bias_nc: float = 0.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        adm: float,
        tail_current: float,
        *,
        cl: float = DEFAULT_CL,
        g0: float | None = None,
        v_cm_in: float = 0.0,
        vov: float = DEFAULT_MIRROR_VOV,
        name: str = "folded_cascode",
    ) -> "FoldedCascodeDiff":
        """Size for at least ``adm`` differential gain.

        The cascode structure's gain is set by the technology (it lands
        at gm/ (lambda^2 V^2) scale); ``adm`` acts as a feasibility
        check, and the achieved value is reported in the estimate.
        """
        if adm <= 0 or tail_current <= 0 or cl <= 0:
            raise EstimationError(f"{name}: adm, tail and cl must be positive")
        id_side = tail_current / 2.0
        # Classic budget: the folding branch carries the same current as
        # a pair side so the cascode stays alive at full slewing.
        i_branch = id_side
        i_fold = id_side + i_branch

        v_tail = v_cm_in - tech.nmos.threshold(0.35) - vov
        vsb_pair = max(v_tail - tech.vss, 0.0)
        pair = size_for_id_vov(
            tech.nmos, tech, ids=id_side, vov=vov, vsb=vsb_pair, vds=0.8
        )
        fold_src = size_for_id_vov(
            tech.pmos, tech, ids=i_fold, vov=vov, vds=vov + 0.2
        )
        casc_p = size_for_id_vov(
            tech.pmos, tech, ids=i_branch, vov=vov,
            vsb=vov + 0.2, vds=vov + 0.2,
        )
        mirror_top = size_for_id_vov(
            tech.nmos, tech, ids=i_branch, vov=vov,
            vsb=tech.nmos.vth0 + vov, vds=vov + 0.2,
        )
        mirror_bot = size_for_id_vov(
            tech.nmos, tech, ids=i_branch, vov=vov, vds=tech.nmos.vth0 + vov
        )
        # Output resistance: PMOS cascode branch || NMOS cascode mirror.
        r_up = casc_p.ss.gm * casc_p.ss.ro * (
            1.0 / (fold_src.gds + pair.gds)
        )
        r_down = mirror_top.ss.gm * mirror_top.ss.ro * mirror_bot.ss.ro
        r_out = r_up * r_down / (r_up + r_down)
        a_est = pair.gm * r_out
        if a_est < adm:
            raise EstimationError(
                f"{name}: folded cascode reaches only {a_est:.0f} < "
                f"requested {adm:.0f} in {tech.name}"
            )
        g0_eff = _tail_conductance(tech, tail_current, g0)
        cmrr_est = 2.0 * pair.gm * r_out * pair.gm / g0_eff if g0_eff else math.inf
        total_current = tail_current + 2.0 * i_fold
        devices = {
            "pair": pair,
            "fold_source": fold_src,
            "cascode_p": casc_p,
            "mirror_top": mirror_top,
            "mirror_bottom": mirror_bot,
        }
        gate_area = (
            2 * pair.gate_area
            + 2 * fold_src.gate_area
            + 2 * casc_p.gate_area
            + 2 * mirror_top.gate_area
            + 2 * mirror_bot.gate_area
        )
        estimate = PerformanceEstimate(
            gate_area=gate_area,
            dc_power=tech.supply_span * total_current,
            gain=a_est,
            cmrr=cmrr_est,
            ugf=pair.gm / (2.0 * math.pi * cl),
            bandwidth=1.0 / (2.0 * math.pi * r_out * cl),
            current=tail_current,
            zout=r_out,
            slew_rate=tail_current / cl,
            extras={"cl": cl, "g0": g0_eff, "i_branch": i_branch,
                    "v_tail": v_tail},
        )
        # Bias levels: fold sources need Vsg, PMOS cascode gates sit a
        # Vsg below the folding-node level, NMOS cascode gates a Vgs
        # above the mirror diode.
        v_bias_p = tech.vdd - fold_src.op.vgs
        v_fold_node = tech.vdd - (vov + 0.2)
        v_bias_pc = v_fold_node - casc_p.op.vgs
        v_bias_nc = tech.vss + mirror_bot.op.vgs + mirror_top.op.vgs
        return cls(
            name=name,
            tech=tech,
            devices=devices,
            estimate=estimate,
            v_cm_in=v_cm_in,
            tail_current=tail_current,
            branch_current=i_branch,
            v_bias_p=v_bias_p,
            v_bias_pc=v_bias_pc,
            v_bias_nc=v_bias_nc,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        inp, inn, out = ports["inp"], ports["inn"], ports["out"]
        tail, vdd, vss = ports["tail"], ports["vdd"], ports["vss"]
        bias_p = ports["bias_p"]
        bias_pc = ports["bias_pc"]
        bias_nc = ports["bias_nc"]
        d = self.devices
        f1, f2 = f"{prefix}_f1", f"{prefix}_f2"
        c1 = f"{prefix}_c1"  # mirror-diode side output
        m1, m2 = f"{prefix}_m1", f"{prefix}_m2"
        pair, fold, cp = d["pair"], d["fold_source"], d["cascode_p"]
        mt, mb = d["mirror_top"], d["mirror_bottom"]
        # Input pair: the fold inverts once more than the mirror path,
        # so the inp-side device drains into the *output* branch fold.
        circuit.m(f1, inp, tail, vss, pair.device.model, pair.w, pair.l,
                  name=f"{prefix}M1")
        circuit.m(f2, inn, tail, vss, pair.device.model, pair.w, pair.l,
                  name=f"{prefix}M2")
        # PMOS folding current sources.
        circuit.m(f1, bias_p, vdd, vdd, fold.device.model, fold.w, fold.l,
                  name=f"{prefix}M4")
        circuit.m(f2, bias_p, vdd, vdd, fold.device.model, fold.w, fold.l,
                  name=f"{prefix}M5")
        # PMOS cascodes from the folding nodes to the output rails.
        circuit.m(c1, bias_pc, f1, vdd, cp.device.model, cp.w, cp.l,
                  name=f"{prefix}M6")
        circuit.m(out, bias_pc, f2, vdd, cp.device.model, cp.w, cp.l,
                  name=f"{prefix}M7")
        # NMOS cascode current mirror (diode side at c1).
        circuit.m(c1, bias_nc, m1, vss, mt.device.model, mt.w, mt.l,
                  name=f"{prefix}M8")
        circuit.m(out, bias_nc, m2, vss, mt.device.model, mt.w, mt.l,
                  name=f"{prefix}M9")
        circuit.m(m1, c1, vss, vss, mb.device.model, mb.w, mb.l,
                  name=f"{prefix}M10")
        circuit.m(m2, c1, vss, vss, mb.device.model, mb.w, mb.l,
                  name=f"{prefix}M11")

    def bench(
        self, mode: str = "differential", v_diff: float = 0.0
    ) -> tuple[Circuit, dict[str, str]]:
        """Self-contained bench with ideal tail and bias rails."""
        if mode not in ("differential", "common"):
            raise EstimationError(f"unknown bench mode {mode!r}")
        ckt = Circuit(f"{self.name}-bench-{mode}")
        vdd, vss = self._supply_nodes(ckt)
        acp, acn = (0.5, -0.5) if mode == "differential" else (1.0, 1.0)
        ckt.v("inp", "0", dc=self.v_cm_in + v_diff / 2, ac=acp, name="VINP")
        ckt.v("inn", "0", dc=self.v_cm_in - v_diff / 2, ac=acn, name="VINN")
        ckt.i("tail", vss, dc=self.tail_current, name="ITAIL")
        g0 = self.estimate.extras["g0"]
        if g0 > 0:
            ckt.r("tail", vss, 1.0 / g0, name="RTAIL")
        ckt.v("biasp", "0", dc=self.v_bias_p, name="VBIASP")
        ckt.v("biaspc", "0", dc=self.v_bias_pc, name="VBIASPC")
        ckt.v("biasnc", "0", dc=self.v_bias_nc, name="VBIASNC")
        self.place(
            ckt, "X1",
            inp="inp", inn="inn", out="out", tail="tail",
            vdd=vdd, vss=vss,
            bias_p="biasp", bias_pc="biaspc", bias_nc="biasnc",
        )
        ckt.c("out", "0", self.estimate.extras["cl"], name="CLOAD")
        return ckt, {"out": "out"}

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        return self.bench("differential")
