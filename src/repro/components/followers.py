"""Source follower / output buffer (paper component ``Follower``).

An NMOS source follower with an NMOS current-sink bias.  Voltage gain
is slightly below one (body effect), output impedance ~1/gm — it is the
stage the paper's op-amps add when "the amplifier is heavily loaded".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..devices import size_for_gm_id, size_for_id_vov
from ..errors import EstimationError
from ..spice import Circuit
from ..technology import Technology
from .base import Component, PerformanceEstimate
from .current_sources import DEFAULT_MIRROR_VOV

__all__ = ["SourceFollower"]


@dataclass
class SourceFollower(Component):
    """A sized follower.

    Ports for :meth:`place`: ``in``, ``out``, ``bias`` (sink gate),
    ``vdd``, ``vss``.
    """

    v_bias_sink: float = 0.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        current: float,
        *,
        z_out: float | None = None,
        r_load: float = math.inf,
        v_out_bias: float | None = None,
        name: str = "follower",
    ) -> "SourceFollower":
        """Size a follower standing ``current`` amps.

        ``z_out`` (ohms) sets the driver transconductance directly
        (gm ~= 1/z_out); when omitted, a default 0.25 V overdrive is
        used.  ``r_load`` derates the gain estimate for resistive loads.
        """
        if current <= 0:
            raise EstimationError(f"{name}: bias current must be positive")
        v_out = v_out_bias if v_out_bias is not None else 0.0
        vsb = v_out - tech.vss
        if z_out is not None:
            if z_out <= 0:
                raise EstimationError(f"{name}: z_out must be positive")
            driver = size_for_gm_id(
                tech.nmos, tech, gm=1.0 / z_out, ids=current,
                vds=tech.vdd - v_out, vsb=vsb,
            )
        else:
            driver = size_for_id_vov(
                tech.nmos, tech, ids=current, vov=DEFAULT_MIRROR_VOV,
                vds=tech.vdd - v_out, vsb=vsb,
            )
        sink = size_for_id_vov(
            tech.nmos, tech, ids=current, vov=DEFAULT_MIRROR_VOV,
            vds=v_out - tech.vss,
        )
        g_load = 0.0 if math.isinf(r_load) else 1.0 / r_load
        g_total = (
            driver.gm + driver.ss.gmb + driver.gds + sink.gds + g_load
        )
        gain = driver.gm / g_total
        zout = 1.0 / (driver.gm + driver.ss.gmb + sink.gds + g_load)
        estimate = PerformanceEstimate(
            gate_area=driver.gate_area + sink.gate_area,
            dc_power=tech.supply_span * current,
            gain=gain,
            current=current,
            zout=zout,
            extras={"v_out_bias": v_out, "r_load": r_load},
        )
        return cls(
            name=name,
            tech=tech,
            devices={"driver": driver, "sink": sink},
            estimate=estimate,
            v_bias_sink=tech.vss + sink.op.vgs,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        inp, out, bias = ports["in"], ports["out"], ports["bias"]
        vdd, vss = ports["vdd"], ports["vss"]
        drv, sink = self.devices["driver"], self.devices["sink"]
        circuit.m(
            vdd, inp, out, vss, drv.device.model, drv.w, drv.l,
            name=f"{prefix}MF",
        )
        circuit.m(
            out, bias, vss, vss, sink.device.model, sink.w, sink.l,
            name=f"{prefix}MS",
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        ckt = Circuit(f"{self.name}-bench")
        vdd, vss = self._supply_nodes(ckt)
        drv = self.devices["driver"]
        v_out = self.estimate.extras["v_out_bias"]
        v_in = v_out + drv.op.vgs
        ckt.v("in", "0", dc=v_in, ac=1.0, name="VINSRC")
        ckt.v("bias", "0", dc=self.v_bias_sink, name="VBIAS")
        self.place(
            ckt, "X1",
            **{"in": "in", "out": "out", "bias": "bias", "vdd": vdd, "vss": vss},
        )
        r_load = self.estimate.extras["r_load"]
        if math.isfinite(r_load):
            ckt.r("out", "0", r_load, name="RLOAD")
        return ckt, {"out": "out", "in": "in"}
