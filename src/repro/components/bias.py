"""DC bias-voltage generator (paper component ``DCVolt``).

A diode-connected NMOS referenced to VSS with a poly resistor to VDD:
the output sits at ``VSS + Vgs(I)`` where the transistor is sized so
that ``Vgs(I)`` lands on the requested output voltage at the requested
standing current.  The paper's Table 2 reports this component's "gain"
as the produced voltage (2.5 V) — we follow that convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices import Resistor as PolyResistor, size_for_id_vov
from ..devices.sizing import MIN_OVERDRIVE
from ..errors import EstimationError
from ..spice import Circuit
from ..technology import Technology
from .base import Component, PerformanceEstimate

__all__ = ["DcVoltageBias"]


@dataclass
class DcVoltageBias(Component):
    """A sized bias-voltage generator.

    Ports for :meth:`place`: ``out``, ``vdd``, ``vss``.
    """

    resistor: PolyResistor = None  # type: ignore[assignment]
    v_out: float = 0.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        v_out: float,
        current: float,
        name: str = "dcvolt",
    ) -> "DcVoltageBias":
        """Size the generator for output ``v_out`` [V] at ``current`` [A].

        ``v_out`` is an absolute voltage between the rails; it must sit
        at least a threshold plus minimum overdrive above VSS so the
        diode device stays in strong inversion.
        """
        if current <= 0:
            raise EstimationError(f"{name}: bias current must be positive")
        if not tech.vss < v_out < tech.vdd:
            raise EstimationError(
                f"{name}: output {v_out} V outside the rails "
                f"[{tech.vss}, {tech.vdd}] V"
            )
        vgs = v_out - tech.vss
        vov = vgs - tech.nmos.vth0
        if vov < MIN_OVERDRIVE:
            raise EstimationError(
                f"{name}: output {v_out} V needs Vov={vov * 1e3:.0f} mV "
                "over the NMOS threshold; raise the output voltage"
            )
        diode = size_for_id_vov(tech.nmos, tech, ids=current, vov=vov, vds=vgs)
        r_value = (tech.vdd - v_out) / current
        resistor = PolyResistor.design(tech, r_value)
        zout = 1.0 / (diode.gm + 1.0 / r_value)
        estimate = PerformanceEstimate(
            gate_area=diode.gate_area,
            dc_power=tech.supply_span * current,
            gain=v_out,  # Table 2 convention: "gain" = produced voltage
            current=current,
            zout=zout,
            extras={"resistor_area": resistor.area, "vgs": vgs},
        )
        return cls(
            name=name,
            tech=tech,
            devices={"diode": diode},
            estimate=estimate,
            resistor=resistor,
            v_out=v_out,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        """Stamp into ``circuit``; ports: ``out``, ``vdd``, ``vss``."""
        out, vdd, vss = ports["out"], ports["vdd"], ports["vss"]
        diode = self.devices["diode"]
        circuit.r(vdd, out, self.resistor.value, name=f"{prefix}R1")
        circuit.m(
            out, out, vss, vss,
            diode.device.model, diode.w, diode.l,
            name=f"{prefix}M1",
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        ckt = Circuit(f"{self.name}-bench")
        vdd, vss = self._supply_nodes(ckt)
        self.place(ckt, "X1", out="out", vdd=vdd, vss=vss)
        return ckt, {"out": "out", "supply": "VDDSUP"}
