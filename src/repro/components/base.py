"""Shared component machinery: performance records and the base class.

The paper's central data structure is the *sized component object*:
"A new object is created with the estimates and sizes attached as
attributes" (§4.2).  :class:`Component` is that object — it owns the
sized transistors, a :class:`PerformanceEstimate`, and knows how to
stamp itself into a simulation netlist for verification.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from ..devices import SizedMos
from ..errors import EstimationError
from ..spice import Circuit
from ..technology import Technology

__all__ = ["PerformanceEstimate", "Component"]


@dataclass
class PerformanceEstimate:
    """The performance parameters the paper's tables report.

    All values are SI; ``math.nan`` marks a parameter that does not
    apply to a component (e.g. UGF of a current mirror).  ``extras``
    carries component-specific figures (compliance voltage, offset, ...).
    """

    #: Total drawn gate area [m^2].
    gate_area: float = math.nan
    #: Static power dissipation [W].
    dc_power: float = math.nan
    #: Low-frequency voltage gain (signed, absolute ratio not dB).
    gain: float = math.nan
    #: Unity-gain frequency [Hz].
    ugf: float = math.nan
    #: -3 dB bandwidth [Hz].
    bandwidth: float = math.nan
    #: Bias / output current [A].
    current: float = math.nan
    #: Output impedance [ohm].
    zout: float = math.nan
    #: Common-mode rejection ratio (absolute ratio).
    cmrr: float = math.nan
    #: Slew rate [V/s].
    slew_rate: float = math.nan
    #: Common-mode gain (signed).
    acm: float = math.nan
    #: Anything component-specific.
    extras: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Defined (non-NaN) scalar figures, merged with extras."""
        out: dict[str, float] = {}
        for f in fields(self):
            if f.name == "extras":
                continue
            value = getattr(self, f.name)
            if not math.isnan(value):
                out[f.name] = value
        out.update(self.extras)
        return out

    @property
    def gain_db(self) -> float:
        if math.isnan(self.gain) or self.gain == 0:
            return math.nan
        return 20.0 * math.log10(abs(self.gain))

    @property
    def cmrr_db(self) -> float:
        if math.isnan(self.cmrr) or self.cmrr <= 0:
            return math.nan
        return 20.0 * math.log10(self.cmrr)

    def __str__(self) -> str:
        parts = [f"{k}={v:.4g}" for k, v in self.as_dict().items()]
        return "PerformanceEstimate(" + ", ".join(parts) + ")"


@dataclass
class Component:
    """A sized analog component with attached performance estimates.

    Subclasses are created through their ``design()`` classmethods; the
    base class provides the common attributes and netlist utilities.
    ``devices`` maps a role name (e.g. ``'input_pair'``, ``'load'``) to
    the sized transistor filling it.
    """

    name: str
    tech: Technology
    devices: dict[str, SizedMos]
    estimate: PerformanceEstimate

    @property
    def gate_area(self) -> float:
        """Total drawn gate area of all devices [m^2]."""
        return sum(d.gate_area for d in self.devices.values())

    def device(self, role: str) -> SizedMos:
        try:
            return self.devices[role]
        except KeyError:
            raise EstimationError(
                f"{self.name}: no device in role {role!r}; "
                f"available: {', '.join(sorted(self.devices))}"
            ) from None

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        """Stamp this component's devices into ``circuit``.

        ``ports`` maps the component's port names to circuit node names;
        each subclass documents its ports.  Element names are prefixed
        with ``prefix`` so multiple instances coexist.
        """
        raise NotImplementedError

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        """A self-contained test bench for this component.

        Returns the circuit and a dict of interesting node names
        (``'out'`` at minimum).  Subclasses override; used by the
        Table 2 est-vs-sim benchmarks.
        """
        raise NotImplementedError

    def _supply_nodes(self, circuit: Circuit) -> tuple[str, str]:
        """Ensure vdd/vss rails exist in a bench circuit; return names."""
        if "VDDSUP" not in circuit:
            circuit.v("vdd", "0", dc=self.tech.vdd, name="VDDSUP")
        if "VSSSUP" not in circuit:
            circuit.v("vss", "0", dc=self.tech.vss, name="VSSSUP")
        return "vdd", "vss"
