"""Single-ended gain stages (paper components ``GainNMOS``/``GainCMOS``/
``GainCMOSH``).

* :class:`GainNmos` — NMOS common-source driver with a diode-connected
  NMOS load; gain set by the overdrive (aspect) ratio, modest but
  well-controlled.
* :class:`GainCmos` — NMOS driver with a PMOS current-source load; gain
  set by channel-length modulation, the paper's Eq.-4-driven high-gain
  stage and the second stage of the two-stage op-amp.
* :class:`GainCmosH` — self-biased CMOS push-pull inverter amplifier
  (the paper's low-power "H" variant); both devices amplify, the
  operating point is pinned by the rails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..devices import size_for_id_vov
from ..devices.sizing import MIN_OVERDRIVE
from ..errors import EstimationError
from ..spice import Circuit
from ..technology import Technology
from .base import Component, PerformanceEstimate

__all__ = ["GainNmos", "GainCmos", "GainCmosH"]

#: Default driver overdrive [V] for ratio-defined stages.
DEFAULT_DRIVER_VOV = 0.2
#: Default load-device overdrive [V] for current-source loads.
DEFAULT_LOAD_VOV = 0.3
#: Default load capacitance [F] when the spec omits one.
DEFAULT_CL = 1e-12


def _chi(tech: Technology, vsb: float) -> float:
    """Body-effect factor gmb/gm of the NMOS at source-bulk bias vsb."""
    n = tech.nmos
    return n.gamma / (2.0 * math.sqrt(n.phi + max(vsb, 0.0)))


@dataclass
class GainNmos(Component):
    """Diode-loaded NMOS common-source stage.

    Ports for :meth:`place`: ``in``, ``out``, ``vdd``, ``vss``.
    Gain (negative) ~= -gm_driver / (gm_load * (1 + chi)).
    """

    v_in_bias: float = 0.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        gain: float,
        current: float,
        *,
        cl: float = DEFAULT_CL,
        name: str = "gain_nmos",
    ) -> "GainNmos":
        """Size for voltage gain ``gain`` (|gain| used) at bias ``current``."""
        a_target = abs(gain)
        if a_target < 1.0:
            raise EstimationError(f"{name}: |gain| must be >= 1")
        if current <= 0 or cl <= 0:
            raise EstimationError(f"{name}: current and cl must be positive")
        # Load rides on the output: vsb_load = vout - vss.  Solve the
        # headroom split iteratively: gain fixes vov_l / vov_d.
        vov_d = DEFAULT_DRIVER_VOV
        for _ in range(12):
            v_out_guess = tech.vdd - tech.nmos.vth0 - a_target * vov_d * 1.1
            vsb_l = max(v_out_guess - tech.vss, 0.0)
            chi = _chi(tech, vsb_l)
            vov_l = a_target * vov_d * (1.0 + chi)
            vgs_l = tech.nmos.threshold(vsb_l) + vov_l
            v_out = tech.vdd - vgs_l
            headroom = v_out - (tech.vss + vov_d + 0.1)
            if headroom >= 0:
                break
            vov_d *= 0.75
            if vov_d < MIN_OVERDRIVE:
                raise EstimationError(
                    f"{name}: gain {a_target:g} infeasible for the diode-"
                    "loaded stage in this technology (headroom exhausted)"
                )
        else:
            raise EstimationError(
                f"{name}: gain {a_target:g} headroom iteration failed"
            )
        driver = size_for_id_vov(
            tech.nmos, tech, ids=current, vov=vov_d,
            vds=v_out - tech.vss,
        )
        load = size_for_id_vov(
            tech.nmos, tech, ids=current, vov=vov_l,
            vds=vgs_l, vsb=vsb_l,
        )
        a_est = driver.gm / (load.gm * (1.0 + chi))
        ugf = driver.gm / (2.0 * math.pi * cl)
        bandwidth = load.gm * (1.0 + chi) / (2.0 * math.pi * cl)
        estimate = PerformanceEstimate(
            gate_area=driver.gate_area + load.gate_area,
            dc_power=tech.supply_span * current,
            gain=-a_est,
            ugf=ugf,
            bandwidth=bandwidth,
            current=current,
            zout=1.0 / (load.gm * (1.0 + chi)),
            slew_rate=current / cl,
            extras={"v_out_bias": v_out, "cl": cl},
        )
        return cls(
            name=name,
            tech=tech,
            devices={"driver": driver, "load": load},
            estimate=estimate,
            v_in_bias=tech.vss + driver.op.vgs,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        inp, out = ports["in"], ports["out"]
        vdd, vss = ports["vdd"], ports["vss"]
        drv, load = self.devices["driver"], self.devices["load"]
        circuit.m(
            out, inp, vss, vss, drv.device.model, drv.w, drv.l,
            name=f"{prefix}MD",
        )
        # Enhancement diode load: drain and gate at VDD, source at out.
        circuit.m(
            vdd, vdd, out, vss, load.device.model, load.w, load.l,
            name=f"{prefix}ML",
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        ckt = Circuit(f"{self.name}-bench")
        vdd, vss = self._supply_nodes(ckt)
        ckt.v("in", "0", dc=self.v_in_bias, ac=1.0, name="VINSRC")
        self.place(ckt, "X1", **{"in": "in", "out": "out", "vdd": vdd, "vss": vss})
        ckt.c("out", "0", self.estimate.extras["cl"], name="CLOAD")
        return ckt, {"out": "out", "in": "in"}


@dataclass
class GainCmos(Component):
    """Current-source-loaded common-source stage (active load).

    Two variants via ``driver_polarity``:

    * NMOS driver + PMOS current-source load (the stand-alone gain
      stage of the paper's Table 2),
    * PMOS driver + NMOS current-sink load (the second stage of the
      classic two-stage op-amp — its input bias level matches a
      mirror-loaded first stage's output directly).

    Ports for :meth:`place`: ``in``, ``out``, ``bias_load`` (load
    gate), ``vdd``, ``vss``.  Gain ~= -2 / (vov_d (lambda_n+lambda_p)).
    """

    v_in_bias: float = 0.0
    v_bias_load: float = 0.0
    driver_polarity: "MosPolarity" = None  # type: ignore[assignment]

    @classmethod
    def design(
        cls,
        tech: Technology,
        gain: float,
        current: float,
        *,
        cl: float = DEFAULT_CL,
        load_vov: float = DEFAULT_LOAD_VOV,
        driver_polarity: "MosPolarity" = None,  # type: ignore[assignment]
        name: str = "gain_cmos",
    ) -> "GainCmos":
        from ..technology import MosPolarity

        if driver_polarity is None:
            driver_polarity = MosPolarity.NMOS
        a_target = abs(gain)
        if current <= 0 or cl <= 0:
            raise EstimationError(f"{name}: current and cl must be positive")
        lam_sum = tech.nmos.lambda_ + tech.pmos.lambda_
        if lam_sum <= 0:
            raise EstimationError(f"{name}: zero lambda — gain unbounded")
        vov_d = 2.0 / (a_target * lam_sum)
        vov_max = tech.supply_span / 2.0
        if vov_d > vov_max:
            raise EstimationError(
                f"{name}: gain {a_target:g} too low for an active-load "
                f"stage (needs Vov={vov_d:.2f} V > {vov_max:.2f} V); use "
                "GainNmos instead"
            )
        if vov_d < MIN_OVERDRIVE:
            raise EstimationError(
                f"{name}: gain {a_target:g} exceeds the single-stage limit "
                f"~{2.0 / (MIN_OVERDRIVE * lam_sum):.0f}; cascade stages"
            )
        v_out = 0.5 * (tech.vdd + tech.vss)  # bias output mid-rail
        drv_model = tech.model(driver_polarity)
        load_pol = (
            MosPolarity.PMOS
            if driver_polarity is MosPolarity.NMOS
            else MosPolarity.NMOS
        )
        load_model = tech.model(load_pol)
        # The driver sits against its own rail; the load against the other.
        drv_vds = (
            v_out - tech.vss
            if driver_polarity is MosPolarity.NMOS
            else tech.vdd - v_out
        )
        load_vds = tech.supply_span - drv_vds
        driver = size_for_id_vov(
            drv_model, tech, ids=current, vov=vov_d, vds=drv_vds
        )
        load = size_for_id_vov(
            load_model, tech, ids=current, vov=load_vov, vds=load_vds
        )
        gout = driver.gds + load.gds
        a_est = driver.gm / gout
        estimate = PerformanceEstimate(
            gate_area=driver.gate_area + load.gate_area,
            dc_power=tech.supply_span * current,
            gain=-a_est,
            ugf=driver.gm / (2.0 * math.pi * cl),
            bandwidth=gout / (2.0 * math.pi * cl),
            current=current,
            zout=1.0 / gout,
            slew_rate=current / cl,
            extras={"v_out_bias": v_out, "cl": cl},
        )
        if driver_polarity is MosPolarity.NMOS:
            v_in_bias = tech.vss + driver.op.vgs
            v_bias_load = tech.vdd - load.op.vgs
        else:
            v_in_bias = tech.vdd - driver.op.vgs
            v_bias_load = tech.vss + load.op.vgs
        return cls(
            name=name,
            tech=tech,
            devices={"driver": driver, "load": load},
            estimate=estimate,
            v_in_bias=v_in_bias,
            v_bias_load=v_bias_load,
            driver_polarity=driver_polarity,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        from ..technology import MosPolarity

        inp, out, bias = ports["in"], ports["out"], ports["bias_load"]
        vdd, vss = ports["vdd"], ports["vss"]
        drv, load = self.devices["driver"], self.devices["load"]
        if self.driver_polarity is MosPolarity.NMOS:
            drv_rail, load_rail = vss, vdd
        else:
            drv_rail, load_rail = vdd, vss
        circuit.m(
            out, inp, drv_rail, drv_rail, drv.device.model, drv.w, drv.l,
            name=f"{prefix}MD",
        )
        circuit.m(
            out, bias, load_rail, load_rail, load.device.model, load.w, load.l,
            name=f"{prefix}ML",
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        ckt = Circuit(f"{self.name}-bench")
        vdd, vss = self._supply_nodes(ckt)
        ckt.v("in", "0", dc=self.v_in_bias, ac=1.0, name="VINSRC")
        ckt.v("biasl", "0", dc=self.v_bias_load, name="VBIASL")
        self.place(
            ckt, "X1",
            **{"in": "in", "out": "out", "bias_load": "biasl",
               "vdd": vdd, "vss": vss},
        )
        ckt.c("out", "0", self.estimate.extras["cl"], name="CLOAD")
        return ckt, {"out": "out", "in": "in"}


@dataclass
class GainCmosH(Component):
    """Self-biased CMOS push-pull inverter amplifier.

    Ports for :meth:`place`: ``in``, ``out``, ``vdd``, ``vss``.  Both
    devices amplify (gm_n + gm_p); the rails pin the overdrives, so the
    gain is a *result* of the technology, not a free spec — matching the
    paper's fixed ~-5 gain, low-power "GainCMOSH" row.
    """

    v_in_bias: float = 0.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        current: float,
        *,
        cl: float = DEFAULT_CL,
        name: str = "gain_cmosh",
    ) -> "GainCmosH":
        if current <= 0 or cl <= 0:
            raise EstimationError(f"{name}: current and cl must be positive")
        vov_total = (
            tech.supply_span - tech.nmos.vth0 - tech.pmos.vth0
        )
        if vov_total < 2 * MIN_OVERDRIVE:
            raise EstimationError(
                f"{name}: rails too low for a self-biased inverter stage"
            )
        # Split the available overdrive so both devices carry `current`
        # at the same input voltage: beta_n vov_n^2 = beta_p vov_p^2 with
        # vov_n + vov_p = vov_total  ->  vov_n/vov_p = sqrt(kp_p/kp_n).
        k = math.sqrt(tech.pmos.kp_effective / tech.nmos.kp_effective)
        vov_n = vov_total * k / (1.0 + k)
        vov_p = vov_total - vov_n
        v_in = tech.vss + tech.nmos.vth0 + vov_n
        nmos = size_for_id_vov(
            tech.nmos, tech, ids=current, vov=vov_n, vds=0.0 - tech.vss
        )
        pmos = size_for_id_vov(
            tech.pmos, tech, ids=current, vov=vov_p, vds=tech.vdd - 0.0
        )
        gm_tot = nmos.gm + pmos.gm
        gout = nmos.gds + pmos.gds
        estimate = PerformanceEstimate(
            gate_area=nmos.gate_area + pmos.gate_area,
            dc_power=tech.supply_span * current,
            gain=-gm_tot / gout,
            ugf=gm_tot / (2.0 * math.pi * cl),
            bandwidth=gout / (2.0 * math.pi * cl),
            current=current,
            zout=1.0 / gout,
            slew_rate=2.0 * current / cl,  # push-pull drives both ways
            extras={"cl": cl, "v_in_bias": v_in},
        )
        return cls(
            name=name,
            tech=tech,
            devices={"nmos": nmos, "pmos": pmos},
            estimate=estimate,
            v_in_bias=v_in,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        inp, out = ports["in"], ports["out"]
        vdd, vss = ports["vdd"], ports["vss"]
        n, p = self.devices["nmos"], self.devices["pmos"]
        circuit.m(
            out, inp, vss, vss, n.device.model, n.w, n.l, name=f"{prefix}MN"
        )
        circuit.m(
            out, inp, vdd, vdd, p.device.model, p.w, p.l, name=f"{prefix}MP"
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        ckt = Circuit(f"{self.name}-bench")
        vdd, vss = self._supply_nodes(ckt)
        ckt.v("in", "0", dc=self.v_in_bias, ac=1.0, name="VINSRC")
        self.place(ckt, "X1", **{"in": "in", "out": "out", "vdd": vdd, "vss": vss})
        ckt.c("out", "0", self.estimate.extras["cl"], name="CLOAD")
        return ckt, {"out": "out", "in": "in"}
