"""Basic analog components (APE level 2, paper §4.2).

Each component couples three things:

1. a *sizing procedure* — symbolic equations inverted to size every
   transistor from the component specification (via the level-1 sizing
   functions),
2. a *performance estimate* — the composed small-signal/large-signal
   figures (gain, UGF, gate area, DC power, Zout, CMRR, slew rate),
3. a *netlist generator* — ``place()`` stamps the sized devices into a
   :class:`~repro.spice.Circuit` so the estimate can be checked against
   full simulation (the paper's Table 2).

Component zoo (the paper's library): DC bias voltage, current sources
(simple mirror / cascode / Wilson), gain stages (NMOS diode load / CMOS
active load / CMOS push-pull "H"), source follower, differential pairs
(NMOS diode load / CMOS mirror load).
"""

from .base import Component, PerformanceEstimate
from .bias import DcVoltageBias
from .current_sources import (
    CascodeCurrentSource,
    CurrentMirror,
    WilsonCurrentSource,
    current_source_by_name,
)
from .gain_stages import GainCmos, GainCmosH, GainNmos
from .followers import SourceFollower
from .differential import DiffCmos, DiffNmos, diff_pair_by_name
from .folded_cascode import FoldedCascodeDiff

__all__ = [
    "Component",
    "PerformanceEstimate",
    "DcVoltageBias",
    "CurrentMirror",
    "CascodeCurrentSource",
    "WilsonCurrentSource",
    "current_source_by_name",
    "GainNmos",
    "GainCmos",
    "GainCmosH",
    "SourceFollower",
    "DiffNmos",
    "DiffCmos",
    "diff_pair_by_name",
    "FoldedCascodeDiff",
]
