"""Current sources and mirrors (paper components ``CurrMirr``/``Wilson``).

Three topologies from the paper's library — the simple two-transistor
mirror, the four-transistor cascode and the three-transistor Wilson —
each as an NMOS *sink* referenced to VSS (the form an op-amp tail
needs) with an optional PMOS *source* variant.  Output impedance is the
figure the topologies trade area for:

* simple:   Zout ~ ro
* Wilson:   Zout ~ gm ro^2 / 2
* cascode:  Zout ~ gm ro^2
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices import SizedMos, size_for_id_vov
from ..errors import EstimationError, TopologyError
from ..spice import Circuit
from ..technology import MosPolarity, Technology
from .base import Component, PerformanceEstimate

__all__ = [
    "CurrentMirror",
    "CascodeCurrentSource",
    "WilsonCurrentSource",
    "current_source_by_name",
]

#: Default overdrive for mirror devices [V] — headroom/accuracy balance.
DEFAULT_MIRROR_VOV = 0.25


def _check_current(name: str, current: float) -> None:
    if current <= 0:
        raise EstimationError(f"{name}: output current must be positive")


def _mirror_device(
    tech: Technology,
    polarity: MosPolarity,
    current: float,
    vov: float,
    vsb: float = 0.0,
) -> SizedMos:
    model = tech.model(polarity)
    return size_for_id_vov(model, tech, ids=current, vov=vov, vsb=vsb)


@dataclass
class CurrentMirror(Component):
    """Simple two-transistor mirror.

    Ports for :meth:`place`: ``ref`` (current input), ``out``, ``rail``
    (VSS for the NMOS sink / VDD for the PMOS source).
    """

    polarity: MosPolarity = MosPolarity.NMOS
    ratio: float = 1.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        current: float,
        *,
        ratio: float = 1.0,
        vov: float = DEFAULT_MIRROR_VOV,
        polarity: MosPolarity = MosPolarity.NMOS,
        name: str = "mirror",
    ) -> "CurrentMirror":
        """Size a mirror delivering ``current`` with input ``current/ratio``."""
        _check_current(name, current)
        if ratio <= 0:
            raise EstimationError(f"{name}: mirror ratio must be positive")
        out_dev = _mirror_device(tech, polarity, current, vov)
        in_dev = out_dev.scaled(1.0 / ratio, w_min=tech.w_min)
        zout = out_dev.ss.ro
        estimate = PerformanceEstimate(
            gate_area=out_dev.gate_area + in_dev.gate_area,
            dc_power=tech.supply_span * current,
            current=current,
            zout=zout,
            extras={"compliance": vov, "ratio": ratio},
        )
        return cls(
            name=name,
            tech=tech,
            devices={"input": in_dev, "output": out_dev},
            estimate=estimate,
            polarity=polarity,
            ratio=ratio,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        ref, out, rail = ports["ref"], ports["out"], ports["rail"]
        din, dout = self.devices["input"], self.devices["output"]
        circuit.m(
            ref, ref, rail, rail, din.device.model, din.w, din.l,
            name=f"{prefix}MIN",
        )
        circuit.m(
            out, ref, rail, rail, dout.device.model, dout.w, dout.l,
            name=f"{prefix}MOUT",
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        return _mirror_bench(self)


@dataclass
class CascodeCurrentSource(Component):
    """Four-transistor cascode mirror (ports: ``ref``, ``out``, ``rail``)."""

    polarity: MosPolarity = MosPolarity.NMOS

    ratio: float = 1.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        current: float,
        *,
        ratio: float = 1.0,
        vov: float = DEFAULT_MIRROR_VOV,
        polarity: MosPolarity = MosPolarity.NMOS,
        name: str = "cascode",
    ) -> "CascodeCurrentSource":
        _check_current(name, current)
        if ratio <= 0:
            raise EstimationError(f"{name}: mirror ratio must be positive")
        bottom = _mirror_device(tech, polarity, current, vov)
        vsb_top = bottom.op.vgs  # cascode sources ride on the bottom Vgs
        top = _mirror_device(tech, polarity, current, vov, vsb=vsb_top)
        zout = top.ss.gm * top.ss.ro * bottom.ss.ro
        devices = {
            "input_bottom": bottom.scaled(1.0 / ratio, w_min=tech.w_min),
            "input_top": top.scaled(1.0 / ratio, w_min=tech.w_min),
            "output_bottom": bottom,
            "output_top": top,
        }
        estimate = PerformanceEstimate(
            gate_area=sum(d.gate_area for d in devices.values()),
            dc_power=tech.supply_span * current,
            current=current,
            zout=zout,
            extras={"compliance": bottom.op.vgs + vov, "ratio": ratio},
        )
        return cls(
            name=name,
            tech=tech,
            devices=devices,
            estimate=estimate,
            polarity=polarity,
            ratio=ratio,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        ref, out, rail = ports["ref"], ports["out"], ports["rail"]
        nb_in = f"{prefix}_b_in"
        nb_out = f"{prefix}_b_out"
        d = self.devices
        model = d["input_bottom"].device.model
        # Input branch: two stacked diodes (ref -> nb_in -> rail).
        circuit.m(
            ref, ref, nb_in, rail, model,
            d["input_top"].w, d["input_top"].l, name=f"{prefix}MIT",
        )
        circuit.m(
            nb_in, nb_in, rail, rail, model,
            d["input_bottom"].w, d["input_bottom"].l, name=f"{prefix}MIB",
        )
        # Output branch mirrors both gates.
        circuit.m(
            out, ref, nb_out, rail, model,
            d["output_top"].w, d["output_top"].l, name=f"{prefix}MOT",
        )
        circuit.m(
            nb_out, nb_in, rail, rail, model,
            d["output_bottom"].w, d["output_bottom"].l, name=f"{prefix}MOB",
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        return _mirror_bench(self)


@dataclass
class WilsonCurrentSource(Component):
    """Three-transistor Wilson mirror (ports: ``ref``, ``out``, ``rail``)."""

    polarity: MosPolarity = MosPolarity.NMOS
    ratio: float = 1.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        current: float,
        *,
        ratio: float = 1.0,
        vov: float = DEFAULT_MIRROR_VOV,
        polarity: MosPolarity = MosPolarity.NMOS,
        name: str = "wilson",
    ) -> "WilsonCurrentSource":
        _check_current(name, current)
        if ratio <= 0:
            raise EstimationError(f"{name}: mirror ratio must be positive")
        diode = _mirror_device(tech, polarity, current, vov)
        # The bottom device carries the *reference* current and shares
        # the diode's gate: its width sets the mirror ratio.
        bottom = diode.scaled(1.0 / ratio, w_min=tech.w_min)
        vsb_top = diode.op.vgs
        top = _mirror_device(tech, polarity, current, vov, vsb=vsb_top)
        # Wilson output impedance: feedback boosts ro by ~gm*ro/2.
        zout = top.ss.gm * top.ss.ro * bottom.ss.ro / 2.0
        devices = {"diode": diode, "bottom": bottom, "output": top}
        estimate = PerformanceEstimate(
            gate_area=sum(d.gate_area for d in devices.values()),
            dc_power=tech.supply_span * current,
            current=current,
            zout=zout,
            extras={"compliance": diode.op.vgs + vov, "ratio": ratio},
        )
        return cls(
            name=name,
            tech=tech,
            devices=devices,
            estimate=estimate,
            polarity=polarity,
            ratio=ratio,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        ref, out, rail = ports["ref"], ports["out"], ports["rail"]
        mid = f"{prefix}_fb"
        d = self.devices
        model = d["diode"].device.model
        # M_bottom: carries the input current, gate driven by the diode.
        circuit.m(
            ref, mid, rail, rail, model,
            d["bottom"].w, d["bottom"].l, name=f"{prefix}MB",
        )
        # M_diode: diode-connected in the output return path.
        circuit.m(
            mid, mid, rail, rail, model,
            d["diode"].w, d["diode"].l, name=f"{prefix}MD",
        )
        # M_out: cascode output device, gate at the input node.
        circuit.m(
            out, ref, mid, rail, model,
            d["output"].w, d["output"].l, name=f"{prefix}MO",
        )

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        return _mirror_bench(self)


def _mirror_bench(
    comp: CurrentMirror | CascodeCurrentSource | WilsonCurrentSource,
) -> tuple[Circuit, dict[str, str]]:
    """Shared test bench: ideal reference in, 0 V meter at the output."""
    ckt = Circuit(f"{comp.name}-bench")
    vdd, vss = comp._supply_nodes(ckt)
    ratio = getattr(comp, "ratio", 1.0)
    i_ref = comp.estimate.current / ratio
    if comp.polarity is MosPolarity.NMOS:
        ckt.i(vdd, "ref", dc=i_ref, name="IREF")
        ckt.v("out", "0", dc=0.0, name="VMEAS")
        comp.place(ckt, "X1", ref="ref", out="out", rail=vss)
    else:
        ckt.i("ref", vss, dc=i_ref, name="IREF")
        ckt.v("out", "0", dc=0.0, name="VMEAS")
        comp.place(ckt, "X1", ref="ref", out="out", rail=vdd)
    return ckt, {"out": "out", "meter": "VMEAS", "ref": "ref"}


_TOPOLOGIES = {
    "mirror": CurrentMirror,
    "simple": CurrentMirror,
    "cascode": CascodeCurrentSource,
    "wilson": WilsonCurrentSource,
}


def current_source_by_name(topology: str):
    """Map a paper topology name (``Mirror``/``Wilson``/``Cascode``) to a class."""
    try:
        return _TOPOLOGIES[topology.lower()]
    except KeyError:
        raise TopologyError(
            f"unknown current-source topology {topology!r}; "
            f"available: {', '.join(sorted(set(_TOPOLOGIES)))}"
        ) from None
