"""Differential amplifiers (paper components ``DiffNMOS``/``DiffCMOS``).

:class:`DiffCmos` is the paper's worked example (§4.2): an NMOS input
pair with a PMOS current-mirror load, single-ended output, modeled by
Eqs. 5-7::

    Adm  ~=  gmi / (gdl + gdi)                       (5)
    Acm  ~= -g0 gdi / (2 gml (gdl + gdi))            (6)
    CMRR ~=  2 gmi gml / (g0 gdi)                    (7)

:class:`DiffNmos` is the diode-loaded variant with a differential
output and ratio-defined gain.

Both components leave the tail current source as a port (``tail``) so
the op-amp level can wire in any of the mirror topologies; the design
equations take the expected tail output conductance ``g0`` (default:
a simple-mirror tail, g0 = lambda_n * Itail).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..devices import size_for_id_vov
from ..devices.sizing import MIN_OVERDRIVE
from ..errors import EstimationError, TopologyError
from ..spice import Circuit
from ..technology import Technology
from .base import Component, PerformanceEstimate
from .gain_stages import DEFAULT_CL, DEFAULT_LOAD_VOV, _chi

__all__ = ["DiffCmos", "DiffNmos", "diff_pair_by_name"]


def _tail_conductance(tech: Technology, tail_current: float, g0: float | None) -> float:
    if g0 is not None:
        if g0 < 0:
            raise EstimationError("tail conductance must be >= 0")
        return g0
    return tech.nmos.lambda_ * tail_current


@dataclass
class DiffCmos(Component):
    """Mirror-loaded differential amplifier, single-ended output.

    Ports for :meth:`place`: ``inp``, ``inn``, ``out``, ``tail``,
    ``vdd``, ``vss``.  The output follows the ``inp`` input in phase.
    """

    v_cm_in: float = 0.0
    tail_current: float = 0.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        adm: float,
        tail_current: float,
        *,
        cl: float = DEFAULT_CL,
        g0: float | None = None,
        v_cm_in: float = 0.0,
        load_vov: float = DEFAULT_LOAD_VOV,
        name: str = "diff_cmos",
    ) -> "DiffCmos":
        """Size for differential gain ``adm`` at tail current ``tail_current``.

        Solves paper Eq. 5 for the input-pair transconductance, sizes
        the pair and the mirror load, then evaluates Eqs. 6-7 and the
        dynamic figures from the sized devices.
        """
        if adm <= 0:
            raise EstimationError(f"{name}: Adm must be positive")
        if tail_current <= 0 or cl <= 0:
            raise EstimationError(f"{name}: tail current and cl must be positive")
        id_side = tail_current / 2.0
        lam_sum = tech.nmos.lambda_ + tech.pmos.lambda_
        # Eq. 5 inverted: gmi = Adm (gdl + gdi) = Adm * Id * lam_sum.
        vov_i = 2.0 / (adm * lam_sum)
        if vov_i < MIN_OVERDRIVE:
            raise EstimationError(
                f"{name}: Adm={adm:g} exceeds the one-stage limit "
                f"~{2.0 / (MIN_OVERDRIVE * lam_sum):.0f}; add a gain stage"
            )
        if vov_i > tech.supply_span / 2.0:
            raise EstimationError(
                f"{name}: Adm={adm:g} too low for a mirror-loaded pair "
                f"(Vov would be {vov_i:.2f} V)"
            )
        v_tail = v_cm_in - tech.nmos.threshold(0.35) - vov_i
        vsb_i = max(v_tail - tech.vss, 0.0)
        v_out = 0.5 * (tech.vdd + tech.vss)
        pair = size_for_id_vov(
            tech.nmos, tech, ids=id_side, vov=vov_i,
            vds=v_out - v_tail, vsb=vsb_i,
        )
        load = size_for_id_vov(
            tech.pmos, tech, ids=id_side, vov=load_vov,
            vds=tech.vdd - v_out,
        )
        g0_eff = _tail_conductance(tech, tail_current, g0)
        gmi, gdi = pair.gm, pair.gds
        gml, gdl = load.gm, load.gds
        adm_est = gmi / (gdl + gdi)
        acm_est = (
            -g0_eff * gdi / (2.0 * gml * (gdl + gdi)) if g0_eff > 0 else 0.0
        )
        cmrr_est = (
            2.0 * gmi * gml / (g0_eff * gdi) if g0_eff > 0 else math.inf
        )
        estimate = PerformanceEstimate(
            gate_area=2.0 * pair.gate_area + 2.0 * load.gate_area,
            dc_power=tech.supply_span * tail_current,
            gain=adm_est,
            acm=acm_est,
            cmrr=cmrr_est,
            ugf=gmi / (2.0 * math.pi * cl),
            bandwidth=(gdl + gdi) / (2.0 * math.pi * cl),
            current=tail_current,
            zout=1.0 / (gdl + gdi),
            slew_rate=tail_current / cl,
            extras={"cl": cl, "g0": g0_eff, "v_tail": v_tail},
        )
        return cls(
            name=name,
            tech=tech,
            devices={"pair": pair, "load": load},
            estimate=estimate,
            v_cm_in=v_cm_in,
            tail_current=tail_current,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        inp, inn, out = ports["inp"], ports["inn"], ports["out"]
        tail, vdd, vss = ports["tail"], ports["vdd"], ports["vss"]
        pair, load = self.devices["pair"], self.devices["load"]
        mirror_node = f"{prefix}_mir"
        # The diode-branch gate is the NON-inverting input: raising it
        # raises the mirrored current sourced into the output node.
        circuit.m(
            mirror_node, inp, tail, vss, pair.device.model, pair.w, pair.l,
            name=f"{prefix}M1",
        )
        circuit.m(
            out, inn, tail, vss, pair.device.model, pair.w, pair.l,
            name=f"{prefix}M2",
        )
        circuit.m(
            mirror_node, mirror_node, vdd, vdd,
            load.device.model, load.w, load.l, name=f"{prefix}ML1",
        )
        circuit.m(
            out, mirror_node, vdd, vdd,
            load.device.model, load.w, load.l, name=f"{prefix}ML2",
        )

    def bench(
        self, mode: str = "differential", v_diff: float = 0.0
    ) -> tuple[Circuit, dict[str, str]]:
        """Bench with an ideal tail emulating the assumed g0.

        ``mode``: ``'differential'`` drives the inputs anti-phase with a
        net 1 V AC differential; ``'common'`` drives both in phase.
        ``v_diff`` adds a DC differential offset (for output balancing).
        """
        if mode not in ("differential", "common"):
            raise EstimationError(f"unknown bench mode {mode!r}")
        ckt = Circuit(f"{self.name}-bench-{mode}")
        vdd, vss = self._supply_nodes(ckt)
        acp, acn = (0.5, -0.5) if mode == "differential" else (1.0, 1.0)
        ckt.v("inp", "0", dc=self.v_cm_in + v_diff / 2, ac=acp, name="VINP")
        ckt.v("inn", "0", dc=self.v_cm_in - v_diff / 2, ac=acn, name="VINN")
        ckt.i("tail", vss, dc=self.tail_current, name="ITAIL")
        g0 = self.estimate.extras["g0"]
        if g0 > 0:
            ckt.r("tail", vss, 1.0 / g0, name="RTAIL")
        self.place(
            ckt, "X1",
            inp="inp", inn="inn", out="out", tail="tail", vdd=vdd, vss=vss,
        )
        ckt.c("out", "0", self.estimate.extras["cl"], name="CLOAD")
        return ckt, {"out": "out"}

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        return self.bench("differential")


@dataclass
class DiffNmos(Component):
    """Diode-loaded differential amplifier, differential output.

    Ports for :meth:`place`: ``inp``, ``inn``, ``outp``, ``outn``,
    ``tail``, ``vdd``, ``vss``.  Gain is negative (each side is a
    diode-loaded common-source stage).
    """

    v_cm_in: float = 0.0
    tail_current: float = 0.0

    @classmethod
    def design(
        cls,
        tech: Technology,
        adm: float,
        tail_current: float,
        *,
        cl: float = DEFAULT_CL,
        g0: float | None = None,
        v_cm_in: float = 0.0,
        name: str = "diff_nmos",
    ) -> "DiffNmos":
        """Size for |differential gain| ``adm`` (ratio-defined)."""
        a_target = abs(adm)
        if a_target < 1.0:
            raise EstimationError(f"{name}: |Adm| must be >= 1")
        if tail_current <= 0 or cl <= 0:
            raise EstimationError(f"{name}: tail current and cl must be positive")
        id_side = tail_current / 2.0
        vov_i = 0.15
        for _ in range(12):
            v_out_guess = tech.vdd - tech.nmos.vth0 - a_target * vov_i
            vsb_l = max(v_out_guess - tech.vss, 0.0)
            chi = _chi(tech, vsb_l)
            vov_l = a_target * vov_i * (1.0 + chi)
            vgs_l = tech.nmos.threshold(vsb_l) + vov_l
            v_out = tech.vdd - vgs_l
            v_tail = v_cm_in - tech.nmos.threshold(0.35) - vov_i
            if v_out > v_tail + vov_i + 0.1 and vov_l < tech.supply_span:
                break
            vov_i *= 0.75
            if vov_i < MIN_OVERDRIVE:
                raise EstimationError(
                    f"{name}: gain {a_target:g} infeasible for diode loads"
                )
        vsb_i = max(v_tail - tech.vss, 0.0)
        pair = size_for_id_vov(
            tech.nmos, tech, ids=id_side, vov=vov_i,
            vds=v_out - v_tail, vsb=vsb_i,
        )
        load = size_for_id_vov(
            tech.nmos, tech, ids=id_side, vov=vov_l,
            vds=vgs_l, vsb=vsb_l,
        )
        g0_eff = _tail_conductance(tech, tail_current, g0)
        gml_eff = load.gm * (1.0 + chi)
        adm_est = pair.gm / gml_eff
        cmrr_est = 2.0 * pair.gm / g0_eff if g0_eff > 0 else math.inf
        estimate = PerformanceEstimate(
            gate_area=2.0 * pair.gate_area + 2.0 * load.gate_area,
            dc_power=tech.supply_span * tail_current,
            gain=-adm_est,
            cmrr=cmrr_est,
            acm=-g0_eff / (2.0 * gml_eff) if g0_eff > 0 else 0.0,
            ugf=pair.gm / (2.0 * math.pi * cl),
            bandwidth=gml_eff / (2.0 * math.pi * cl),
            current=tail_current,
            zout=1.0 / gml_eff,
            slew_rate=tail_current / cl,
            extras={"cl": cl, "g0": g0_eff, "v_tail": v_tail},
        )
        return cls(
            name=name,
            tech=tech,
            devices={"pair": pair, "load": load},
            estimate=estimate,
            v_cm_in=v_cm_in,
            tail_current=tail_current,
        )

    def place(self, circuit: Circuit, prefix: str, **ports: str) -> None:
        inp, inn = ports["inp"], ports["inn"]
        outp, outn = ports["outp"], ports["outn"]
        tail, vdd, vss = ports["tail"], ports["vdd"], ports["vss"]
        pair, load = self.devices["pair"], self.devices["load"]
        # Anti-phase: the inp-side drain is outn (inverting per side).
        circuit.m(
            outn, inp, tail, vss, pair.device.model, pair.w, pair.l,
            name=f"{prefix}M1",
        )
        circuit.m(
            outp, inn, tail, vss, pair.device.model, pair.w, pair.l,
            name=f"{prefix}M2",
        )
        # Enhancement diode loads: drain and gate at VDD, sources at the
        # output nodes.
        circuit.m(
            vdd, vdd, outn, vss, load.device.model, load.w, load.l,
            name=f"{prefix}ML1",
        )
        circuit.m(
            vdd, vdd, outp, vss, load.device.model, load.w, load.l,
            name=f"{prefix}ML2",
        )

    def bench(
        self, mode: str = "differential"
    ) -> tuple[Circuit, dict[str, str]]:
        if mode not in ("differential", "common"):
            raise EstimationError(f"unknown bench mode {mode!r}")
        ckt = Circuit(f"{self.name}-bench-{mode}")
        vdd, vss = self._supply_nodes(ckt)
        acp, acn = (0.5, -0.5) if mode == "differential" else (1.0, 1.0)
        ckt.v("inp", "0", dc=self.v_cm_in, ac=acp, name="VINP")
        ckt.v("inn", "0", dc=self.v_cm_in, ac=acn, name="VINN")
        ckt.i("tail", vss, dc=self.tail_current, name="ITAIL")
        g0 = self.estimate.extras["g0"]
        if g0 > 0:
            ckt.r("tail", vss, 1.0 / g0, name="RTAIL")
        self.place(
            ckt, "X1",
            inp="inp", inn="inn", outp="outp", outn="outn",
            tail="tail", vdd=vdd, vss=vss,
        )
        half_cl = self.estimate.extras["cl"] / 2.0
        if half_cl > 0:
            ckt.c("outp", "0", half_cl, name="CLP")
            ckt.c("outn", "0", half_cl, name="CLN")
        return ckt, {"outp": "outp", "outn": "outn"}

    def verification_circuit(self) -> tuple[Circuit, dict[str, str]]:
        return self.bench("differential")


_PAIRS = {"cmos": DiffCmos, "nmos": DiffNmos}


def diff_pair_by_name(kind: str):
    """Map the paper's diff-amp names (``CMOS``/``NMOS``) to classes."""
    try:
        return _PAIRS[kind.lower()]
    except KeyError:
        raise TopologyError(
            f"unknown differential-pair kind {kind!r}; "
            f"available: {', '.join(sorted(_PAIRS))}"
        ) from None
