"""Engineering-notation quantities.

SPICE and analog datasheets express values as ``1.3Meg``, ``10p``,
``4.7K`` and so on.  This module converts between those strings and
floats, and formats floats back into readable engineering notation.

The suffix grammar follows SPICE conventions: suffixes are
case-insensitive, ``MEG`` (or ``X``) is mega and a bare ``M`` is milli.
Any trailing unit letters after the scale suffix (``10pF``, ``2.5KOhm``)
are ignored, as in SPICE.
"""

from __future__ import annotations

import math
import re

from .errors import UnitError

__all__ = ["parse_quantity", "format_quantity", "format_si", "db", "undb"]

# Ordered so that the longest suffixes are matched first.
_SUFFIXES: list[tuple[str, float]] = [
    ("meg", 1e6),
    ("mil", 25.4e-6),  # SPICE: mil = 1/1000 inch
    ("t", 1e12),
    ("g", 1e9),
    ("x", 1e6),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
]

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Zµ%]*)\s*$"
)

# Display suffixes keyed by decade exponent / 3.
_DISPLAY = {
    -6: "a",
    -5: "f",
    -4: "p",
    -3: "n",
    -2: "u",
    -1: "m",
    0: "",
    1: "k",
    2: "Meg",
    3: "G",
    4: "T",
}


def parse_quantity(value: str | float | int) -> float:
    """Convert a SPICE-style quantity to a float.

    Accepts plain numbers (which pass through), strings with optional
    engineering suffixes and trailing unit names::

        >>> parse_quantity("1.3Meg")
        1300000.0
        >>> parse_quantity("10pF")
        1e-11
        >>> parse_quantity(42)
        42.0

    Raises :class:`~repro.errors.UnitError` for malformed input.
    """
    if isinstance(value, (int, float)):
        if isinstance(value, bool):
            raise UnitError(f"booleans are not quantities: {value!r}")
        return float(value)
    match = _NUMBER_RE.match(value)
    if match is None:
        raise UnitError(f"cannot parse quantity {value!r}")
    mantissa = float(match.group(1))
    tail = match.group(2).lower().replace("µ", "u")
    if not tail or tail == "%":
        return mantissa * (0.01 if tail == "%" else 1.0)
    for suffix, scale in _SUFFIXES:
        if tail.startswith(suffix):
            return mantissa * scale
    # A bare unit name with no scale suffix, e.g. "5V" or "3Hz".
    if tail.isalpha():
        return mantissa
    raise UnitError(f"cannot parse quantity {value!r}")


def format_quantity(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` in engineering notation, e.g. ``'1.3MegHz'``.

    ``unit`` is appended verbatim after the scale suffix.  Zero, NaN and
    infinities format without a suffix.
    """
    if value == 0 or not math.isfinite(value):
        return f"{value:g}{unit}"
    exponent = math.floor(math.log10(abs(value)) / 3)
    exponent = max(min(exponent, max(_DISPLAY)), min(_DISPLAY))
    scaled = value / 10 ** (3 * exponent)
    text = f"{scaled:.{digits}g}"
    return f"{text}{_DISPLAY[exponent]}{unit}"


def format_si(value: float, unit: str = "", digits: int = 4) -> str:
    """Like :func:`format_quantity` but with the SI mega symbol ``M``."""
    text = format_quantity(value, unit="", digits=digits)
    return text.replace("Meg", "M") + unit


def db(ratio: float) -> float:
    """Magnitude ratio -> decibels (20*log10)."""
    if ratio <= 0:
        raise UnitError(f"dB of non-positive ratio {ratio!r}")
    return 20.0 * math.log10(ratio)


def undb(decibels: float) -> float:
    """Decibels -> magnitude ratio."""
    return 10.0 ** (decibels / 20.0)
