"""Technology level: fabrication process parameters and SPICE model cards.

This is the lowest layer of the APE hierarchy (paper §4.1): every
transistor sizing decision and every simulation stamps values that come
from here.  A :class:`Technology` bundles an NMOS and a PMOS
:class:`MosModelParams` plus supply and layout-rule data; preset
technologies for generic 0.5 um, 0.35 um and 1.2 um CMOS processes are
provided in :mod:`repro.technology.presets`, and arbitrary SPICE
``.MODEL`` cards can be loaded with :func:`parse_model_card` /
:func:`load_model_file`.
"""

from .process import (
    EPS_OX,
    EPS_SI,
    MosModelParams,
    MosPolarity,
    Technology,
)
from .model_card import parse_model_card, parse_model_cards, load_model_file
from .temperature import at_temperature
from .presets import (
    generic_035um,
    generic_05um,
    generic_12um,
    technology_by_name,
    PRESET_NAMES,
)

__all__ = [
    "EPS_OX",
    "EPS_SI",
    "MosModelParams",
    "MosPolarity",
    "Technology",
    "parse_model_card",
    "parse_model_cards",
    "load_model_file",
    "at_temperature",
    "generic_05um",
    "generic_035um",
    "generic_12um",
    "technology_by_name",
    "PRESET_NAMES",
]
