"""Fabrication process parameters for MOS devices.

APE's transistor models (paper Eqs. 1-4) are tied to the fabrication
process: KP, VTO, gamma, phi, lambda, tox and the overlap/junction
capacitance coefficients all come from a SPICE model card.  This module
holds those parameters in :class:`MosModelParams` and groups an NMOS +
PMOS pair with supply/layout data in :class:`Technology`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace

from ..errors import TechnologyError

__all__ = ["EPS_OX", "EPS_SI", "MosPolarity", "MosModelParams", "Technology"]

#: Permittivity of SiO2 [F/m].
EPS_OX = 3.9 * 8.854e-12
#: Permittivity of silicon [F/m].
EPS_SI = 11.7 * 8.854e-12

#: Boltzmann constant over electron charge at 300 K [V].
THERMAL_VOLTAGE_300K = 0.02585


class MosPolarity(enum.Enum):
    """Device polarity; PMOS quantities are sign-flipped internally."""

    NMOS = "nmos"
    PMOS = "pmos"

    @property
    def sign(self) -> int:
        """+1 for NMOS, -1 for PMOS (applied to terminal voltages)."""
        return 1 if self is MosPolarity.NMOS else -1


@dataclass(frozen=True)
class MosModelParams:
    """SPICE Level-1/2/3 MOS model parameters (SI units throughout).

    Only the parameters APE's analytical equations and our simulator
    need are stored; anything else on a model card is kept in
    :attr:`extra` so round-tripping cards is lossless.
    """

    polarity: MosPolarity
    name: str = "M"
    level: int = 1
    #: Zero-bias threshold voltage [V] (positive for NMOS, negative PMOS).
    vto: float = 0.7
    #: Transconductance parameter KP = u0 * Cox [A/V^2]. 0 -> derive.
    kp: float = 0.0
    #: Surface mobility [m^2/(V s)] (SPICE U0 is cm^2/(V s); converted).
    u0: float = 0.05
    #: Gate-oxide thickness [m].
    tox: float = 10e-9
    #: Body-effect coefficient gamma [sqrt(V)].
    gamma: float = 0.5
    #: Surface potential 2*phi_F [V] (SPICE PHI).
    phi: float = 0.7
    #: Channel-length modulation [1/V].
    lambda_: float = 0.04
    #: Lateral diffusion [m].
    ld: float = 0.0
    #: Gate-drain / gate-source overlap capacitance [F/m].
    cgdo: float = 0.0
    cgso: float = 0.0
    #: Gate-bulk overlap capacitance [F/m].
    cgbo: float = 0.0
    #: Zero-bias bulk junction bottom capacitance [F/m^2].
    cj: float = 0.0
    #: Zero-bias bulk junction sidewall capacitance [F/m].
    cjsw: float = 0.0
    #: Junction grading coefficients and built-in potential.
    mj: float = 0.5
    mjsw: float = 0.33
    pb: float = 0.8
    #: Saturation current of bulk junctions [A].
    is_: float = 1e-14
    #: Drain/source sheet resistance [ohm/sq].
    rsh: float = 0.0
    #: Substrate doping [1/cm^3]; used by Level 2/3 refinements.
    nsub: float = 1e16
    #: Metallurgical junction depth [m]; Level 3 short-channel effect.
    xj: float = 0.3e-6
    #: Level 3 mobility-degradation coefficient THETA [1/V].
    theta: float = 0.0
    #: Level 3 saturation velocity VMAX [m/s] (0 -> ignore).
    vmax: float = 0.0
    #: Level 2/3 channel charge coefficient NEFF, fast-surface states NFS.
    neff: float = 1.0
    nfs: float = 0.0
    #: Unrecognised card parameters, preserved verbatim.
    extra: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tox <= 0:
            raise TechnologyError(f"model {self.name!r}: TOX must be > 0")
        if self.level not in (1, 2, 3):
            raise TechnologyError(
                f"model {self.name!r}: unsupported LEVEL {self.level} "
                "(supported: 1, 2, 3)"
            )
        if self.polarity is MosPolarity.NMOS and self.vto < 0:
            raise TechnologyError(
                f"model {self.name!r}: NMOS VTO should be positive"
            )
        if self.polarity is MosPolarity.PMOS and self.vto > 0:
            raise TechnologyError(
                f"model {self.name!r}: PMOS VTO should be negative"
            )

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area [F/m^2]."""
        return EPS_OX / self.tox

    @property
    def kp_effective(self) -> float:
        """KP if given on the card, else u0 * Cox (paper Eq. 1 prefactor)."""
        return self.kp if self.kp > 0 else self.u0 * self.cox

    @property
    def vth0(self) -> float:
        """Zero-bias threshold as a positive magnitude [V]."""
        return abs(self.vto)

    def threshold(self, vsb: float = 0.0) -> float:
        """Threshold-voltage magnitude with body effect [V].

        ``vsb`` is the source-bulk voltage magnitude (>= 0 for normal
        operation); the classic square-root body-effect law is used::

            Vth = Vth0 + gamma * (sqrt(2*phi_F + Vsb) - sqrt(2*phi_F))
        """
        vsb = max(vsb, 0.0)
        return self.vth0 + self.gamma * (
            math.sqrt(self.phi + vsb) - math.sqrt(self.phi)
        )

    def with_(self, **changes: object) -> "MosModelParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Technology:
    """A complete process: NMOS + PMOS models plus supply/layout data."""

    name: str
    nmos: MosModelParams
    pmos: MosModelParams
    #: Positive and negative supply rails [V].
    vdd: float = 2.5
    vss: float = -2.5
    #: Minimum drawn channel length and width [m].
    l_min: float = 0.6e-6
    w_min: float = 0.9e-6
    #: Maximum drawn width [m] (sizing sanity bound).
    w_max: float = 2000e-6
    #: Poly sheet resistance [ohm/sq] for on-chip resistors.
    poly_rsh: float = 25.0
    #: Poly-poly capacitor density [F/m^2].
    cap_density: float = 0.9e-3
    #: Default drain/source diffusion extension for parasitics [m].
    diffusion_extension: float = 1.5e-6

    def __post_init__(self) -> None:
        if self.nmos.polarity is not MosPolarity.NMOS:
            raise TechnologyError(f"{self.name}: nmos slot holds a PMOS model")
        if self.pmos.polarity is not MosPolarity.PMOS:
            raise TechnologyError(f"{self.name}: pmos slot holds an NMOS model")
        if self.vdd <= self.vss:
            raise TechnologyError(f"{self.name}: VDD must exceed VSS")
        if self.l_min <= 0 or self.w_min <= 0:
            raise TechnologyError(f"{self.name}: minimum sizes must be > 0")

    @property
    def supply_span(self) -> float:
        """Total rail-to-rail voltage [V]."""
        return self.vdd - self.vss

    def model(self, polarity: MosPolarity) -> MosModelParams:
        """Model parameters for the requested polarity."""
        return self.nmos if polarity is MosPolarity.NMOS else self.pmos

    def resistor_area(self, resistance: float, width: float = 2e-6) -> float:
        """Layout area [m^2] of a poly resistor of the given value."""
        if resistance <= 0:
            raise TechnologyError("resistance must be positive")
        squares = resistance / self.poly_rsh
        return squares * width * width

    def capacitor_area(self, capacitance: float) -> float:
        """Layout area [m^2] of a poly-poly capacitor of the given value."""
        if capacitance < 0:
            raise TechnologyError("capacitance must be non-negative")
        return capacitance / self.cap_density
