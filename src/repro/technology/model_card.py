"""SPICE ``.MODEL`` card parsing.

APE "uses technology process parameters and SPICE models of analog
circuit elements at the lowest level" (paper §1).  This parser accepts
the classic card syntax::

    .MODEL CMOSN NMOS (LEVEL=3 VTO=0.78 KP=5.7E-5 GAMMA=0.55 ... )

including ``+`` continuation lines, ``*`` comments, engineering-notation
values and case-insensitive keys, and produces
:class:`~repro.technology.process.MosModelParams`.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..errors import ModelCardError, UnitError
from ..units import parse_quantity
from .process import MosModelParams, MosPolarity

__all__ = ["parse_model_card", "parse_model_cards", "load_model_file"]

_MODEL_RE = re.compile(
    r"\.model\s+(?P<name>\S+)\s+(?P<type>nmos|pmos)\s*(?P<body>.*)$",
    re.IGNORECASE | re.DOTALL,
)
_ASSIGN_RE = re.compile(r"([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*([^\s()=]+)")

# Card key -> MosModelParams field, with unit conversion where SPICE
# units differ from SI (U0 is cm^2/Vs on cards).
_FIELD_MAP: dict[str, str] = {
    "vto": "vto",
    "kp": "kp",
    "tox": "tox",
    "gamma": "gamma",
    "phi": "phi",
    "lambda": "lambda_",
    "ld": "ld",
    "cgdo": "cgdo",
    "cgso": "cgso",
    "cgbo": "cgbo",
    "cj": "cj",
    "cjsw": "cjsw",
    "mj": "mj",
    "mjsw": "mjsw",
    "pb": "pb",
    "is": "is_",
    "rsh": "rsh",
    "nsub": "nsub",
    "xj": "xj",
    "theta": "theta",
    "vmax": "vmax",
    "neff": "neff",
    "nfs": "nfs",
    "level": "level",
}


def _strip_comments(text: str) -> str:
    lines = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("*"):
            continue
        # Inline ';' or '$' comments (ngspice-style).
        for marker in (";", "$ "):
            pos = stripped.find(marker)
            if pos >= 0:
                stripped = stripped[:pos]
        lines.append(stripped)
    return "\n".join(lines)


def _join_continuations(text: str) -> list[str]:
    """Fold SPICE ``+`` continuation lines into single statements."""
    statements: list[str] = []
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("+"):
            if not statements:
                raise ModelCardError("continuation line with no preceding card")
            statements[-1] += " " + line[1:].strip()
        else:
            statements.append(line)
    return statements


def parse_model_card(card: str) -> MosModelParams:
    """Parse a single ``.MODEL`` statement into :class:`MosModelParams`."""
    cards = parse_model_cards(card)
    if len(cards) != 1:
        raise ModelCardError(
            f"expected exactly one .MODEL card, found {len(cards)}"
        )
    return next(iter(cards.values()))


def parse_model_cards(
    text: str, *, required: bool = True
) -> dict[str, MosModelParams]:
    """Parse every ``.MODEL`` card in ``text``, keyed by model name.

    With ``required=False`` a text containing no ``.MODEL`` cards
    returns an empty dict instead of raising — deck readers use this so
    model-free decks parse cleanly while malformed cards still raise.
    """
    statements = _join_continuations(_strip_comments(text))
    models: dict[str, MosModelParams] = {}
    for statement in statements:
        if not statement.lower().startswith(".model"):
            continue
        match = _MODEL_RE.match(statement)
        if match is None:
            raise ModelCardError(f"malformed .MODEL card: {statement!r}")
        name = match.group("name")
        polarity = (
            MosPolarity.NMOS
            if match.group("type").lower() == "nmos"
            else MosPolarity.PMOS
        )
        fields: dict[str, object] = {"name": name, "polarity": polarity}
        extra: dict[str, float] = {}
        for key, raw in _ASSIGN_RE.findall(match.group("body")):
            key_lower = key.lower()
            try:
                value = parse_quantity(raw)
            except (UnitError, ValueError) as exc:
                raise ModelCardError(
                    f"model {name!r}: bad value {raw!r} for {key}"
                ) from exc
            if key_lower == "u0":
                fields["u0"] = value * 1e-4  # cm^2/(V s) -> m^2/(V s)
            elif key_lower == "level":
                fields["level"] = int(value)
            elif key_lower in _FIELD_MAP:
                fields[_FIELD_MAP[key_lower]] = value
            else:
                extra[key_lower] = value
        fields["extra"] = extra
        models[name] = MosModelParams(**fields)  # type: ignore[arg-type]
    if not models and required:
        raise ModelCardError("no .MODEL cards found")
    return models


def load_model_file(path: str | Path) -> dict[str, MosModelParams]:
    """Parse every ``.MODEL`` card in a file, keyed by model name."""
    return parse_model_cards(Path(path).read_text())
