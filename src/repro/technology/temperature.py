"""Temperature scaling of MOS model parameters.

First-order SPICE temperature model: threshold magnitude falls
~2 mV/K and mobility follows a T^-1.5 power law, both relative to the
nominal 27 C card.  :func:`at_temperature` derives a complete
:class:`Technology` at any junction temperature so sizing and
simulation can be re-run hot/cold (industrial sign-off range -40 to
125 C).
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import TechnologyError
from .process import MosModelParams, Technology

__all__ = ["at_temperature", "NOMINAL_TEMP_C", "VTO_TC", "MOBILITY_EXPONENT"]

#: Model-card reference temperature [C].
NOMINAL_TEMP_C = 27.0
#: Threshold-magnitude temperature coefficient [V/K].
VTO_TC = -2.0e-3
#: Mobility power-law exponent (u ~ T^-1.5).
MOBILITY_EXPONENT = -1.5


def _scale_model(model: MosModelParams, temp_c: float) -> MosModelParams:
    t_nom = NOMINAL_TEMP_C + 273.15
    t_new = temp_c + 273.15
    dt = temp_c - NOMINAL_TEMP_C
    sign = 1.0 if model.vto >= 0 else -1.0
    new_mag = max(abs(model.vto) + VTO_TC * dt, 1e-3)
    mobility_factor = (t_new / t_nom) ** MOBILITY_EXPONENT
    return model.with_(
        vto=sign * new_mag,
        kp=model.kp_effective * mobility_factor,
        u0=model.u0 * mobility_factor,
    )


def at_temperature(tech: Technology, temp_c: float) -> Technology:
    """A copy of ``tech`` with both models scaled to ``temp_c`` [C]."""
    if not -100.0 <= temp_c <= 250.0:
        raise TechnologyError(
            f"temperature {temp_c} C outside the model's validity range"
        )
    return replace(
        tech,
        name=f"{tech.name}@{temp_c:g}C",
        nmos=_scale_model(tech.nmos, temp_c),
        pmos=_scale_model(tech.pmos, temp_c),
    )
