"""Bundled generic CMOS technologies.

The paper's experiments use a proprietary fab model card we do not have;
these presets are generic MOSIS-class educational parameter sets for
0.5 um, 0.35 um and 1.2 um CMOS (Level-1/3 compatible), expressed as the
SPICE cards they would normally arrive as and parsed through the same
:func:`~repro.technology.model_card.parse_model_cards` path a user's own
card would take.
"""

from __future__ import annotations

from ..errors import TechnologyError
from .model_card import parse_model_cards
from .process import Technology

__all__ = [
    "generic_05um",
    "generic_035um",
    "generic_12um",
    "technology_by_name",
    "PRESET_NAMES",
]

_CARD_05UM = """
* Generic 0.5 um CMOS (MOSIS C5 class)
.MODEL CMOSN NMOS (LEVEL=1 VTO=0.70 KP=110E-6 GAMMA=0.45 PHI=0.70
+ LAMBDA=0.04 TOX=1.4E-8 LD=0.08E-6 U0=460
+ CGDO=2.0E-10 CGSO=2.0E-10 CGBO=1.0E-9
+ CJ=4.2E-4 CJSW=3.2E-10 MJ=0.44 MJSW=0.12 PB=0.9 RSH=82
+ NSUB=1.7E17 XJ=0.15E-6)
.MODEL CMOSP PMOS (LEVEL=1 VTO=-0.90 KP=50E-6 GAMMA=0.57 PHI=0.80
+ LAMBDA=0.05 TOX=1.4E-8 LD=0.09E-6 U0=160
+ CGDO=2.4E-10 CGSO=2.4E-10 CGBO=1.1E-9
+ CJ=7.2E-4 CJSW=2.4E-10 MJ=0.51 MJSW=0.24 PB=0.9 RSH=101
+ NSUB=1.2E17 XJ=0.17E-6)
"""

_CARD_035UM = """
* Generic 0.35 um CMOS (TSMC 0.35 class)
.MODEL CMOSN NMOS (LEVEL=1 VTO=0.55 KP=170E-6 GAMMA=0.58 PHI=0.80
+ LAMBDA=0.06 TOX=7.6E-9 LD=0.05E-6 U0=400
+ CGDO=2.8E-10 CGSO=2.8E-10 CGBO=1.0E-9
+ CJ=9.0E-4 CJSW=2.8E-10 MJ=0.36 MJSW=0.10 PB=0.7 RSH=77
+ NSUB=2.3E17 XJ=0.12E-6)
.MODEL CMOSP PMOS (LEVEL=1 VTO=-0.70 KP=58E-6 GAMMA=0.49 PHI=0.80
+ LAMBDA=0.08 TOX=7.6E-9 LD=0.06E-6 U0=140
+ CGDO=2.9E-10 CGSO=2.9E-10 CGBO=1.1E-9
+ CJ=1.4E-3 CJSW=3.2E-10 MJ=0.56 MJSW=0.43 PB=0.9 RSH=150
+ NSUB=1.8E17 XJ=0.13E-6)
"""

_CARD_12UM = """
* Generic 1.2 um CMOS (MOSIS ABN 1.2 class)
.MODEL CMOSN NMOS (LEVEL=1 VTO=0.75 KP=80E-6 GAMMA=0.37 PHI=0.60
+ LAMBDA=0.02 TOX=3.1E-8 LD=0.25E-6 U0=600
+ CGDO=3.2E-10 CGSO=3.2E-10 CGBO=1.5E-9
+ CJ=2.9E-4 CJSW=3.3E-10 MJ=0.49 MJSW=0.27 PB=0.8 RSH=25
+ NSUB=5.9E16 XJ=0.27E-6)
.MODEL CMOSP PMOS (LEVEL=1 VTO=-0.85 KP=27E-6 GAMMA=0.49 PHI=0.60
+ LAMBDA=0.03 TOX=3.1E-8 LD=0.22E-6 U0=200
+ CGDO=3.5E-10 CGSO=3.5E-10 CGBO=1.5E-9
+ CJ=3.0E-4 CJSW=3.4E-10 MJ=0.45 MJSW=0.29 PB=0.8 RSH=55
+ NSUB=4.4E16 XJ=0.25E-6)
"""


def _build(name: str, card: str, **kwargs: float) -> Technology:
    models = parse_model_cards(card)
    return Technology(
        name=name,
        nmos=models["CMOSN"],
        pmos=models["CMOSP"],
        **kwargs,  # type: ignore[arg-type]
    )


def generic_05um() -> Technology:
    """Generic 0.5 um CMOS at +/-2.5 V — the default for all experiments."""
    return _build(
        "generic-0.5um",
        _CARD_05UM,
        vdd=2.5,
        vss=-2.5,
        l_min=0.6e-6,
        w_min=0.9e-6,
        poly_rsh=25.0,
        cap_density=0.9e-3,
    )


def generic_035um() -> Technology:
    """Generic 0.35 um CMOS at +/-1.65 V."""
    return _build(
        "generic-0.35um",
        _CARD_035UM,
        vdd=1.65,
        vss=-1.65,
        l_min=0.35e-6,
        w_min=0.5e-6,
        poly_rsh=8.0,
        cap_density=1.1e-3,
    )


def generic_12um() -> Technology:
    """Generic 1.2 um CMOS at +/-2.5 V (the paper's era)."""
    return _build(
        "generic-1.2um",
        _CARD_12UM,
        vdd=2.5,
        vss=-2.5,
        l_min=1.2e-6,
        w_min=1.8e-6,
        poly_rsh=25.0,
        cap_density=0.5e-3,
    )


_PRESETS = {
    "generic-0.5um": generic_05um,
    "generic-0.35um": generic_035um,
    "generic-1.2um": generic_12um,
}

#: Names accepted by :func:`technology_by_name`.
PRESET_NAMES = tuple(sorted(_PRESETS))


def technology_by_name(name: str) -> Technology:
    """Look up a preset technology by name (see :data:`PRESET_NAMES`)."""
    try:
        return _PRESETS[name]()
    except KeyError:
        raise TechnologyError(
            f"unknown technology {name!r}; available: {', '.join(PRESET_NAMES)}"
        ) from None
