"""Structural graph analysis for the electrical rule checker.

The ERC reasons about *DC conduction*: which element connections can
carry a defined DC current with a voltage relation between their
terminals.  Resistors, inductors (shorts at DC), independent voltage
sources, VCVS outputs and MOSFET channels conduct; capacitors (open at
DC), current sources and VCCS outputs (current-defined branches) do
not.  Rank problems of the MNA matrix — voltage-source loops and
current-source cutsets — are detected on this graph with a union-find,
without ever assembling a matrix.
"""

from __future__ import annotations

from ..spice.netlist import (
    Capacitor,
    Circuit,
    CurrentSource,
    Element,
    GROUND_NAMES,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)

__all__ = [
    "GROUND",
    "DisjointSet",
    "alias",
    "conduction_edges",
    "loop_closing_elements",
]

#: Canonical name all ground aliases collapse to.
GROUND = "0"


def alias(node: str) -> str:
    """Collapse every ground spelling onto the canonical ground name."""
    return GROUND if node in GROUND_NAMES else node


class DisjointSet:
    """Union-find over string-named nodes with path compression."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}
        self._rank: dict[str, int] = {}

    def add(self, node: str) -> None:
        if node not in self._parent:
            self._parent[node] = node
            self._rank[node] = 0

    def __contains__(self, node: str) -> bool:
        return node in self._parent

    def find(self, node: str) -> str:
        self.add(node)
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:  # path compression
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, a: str, b: str) -> bool:
        """Join the sets of ``a`` and ``b``; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def connected(self, a: str, b: str) -> bool:
        return self.find(a) == self.find(b)

    def components(self) -> dict[str, frozenset[str]]:
        """Mapping of representative -> member nodes."""
        groups: dict[str, set[str]] = {}
        for node in self._parent:
            groups.setdefault(self.find(node), set()).add(node)
        return {root: frozenset(nodes) for root, nodes in groups.items()}


def conduction_edges(element: Element) -> tuple[tuple[str, str], ...]:
    """DC conduction edges contributed by one element (aliased nodes)."""
    if isinstance(element, (Resistor, Inductor)):
        return ((alias(element.n1), alias(element.n2)),)
    if isinstance(element, VoltageSource):
        return ((alias(element.np), alias(element.nn)),)
    if isinstance(element, Vcvs):
        # Only the *output* branch is voltage-defined; the controlling
        # terminals sense without conducting.
        return ((alias(element.np), alias(element.nn)),)
    if isinstance(element, Mosfet):
        return ((alias(element.nd), alias(element.ns)),)
    # Capacitor, CurrentSource, Vccs: open or current-defined at DC.
    return ()


def loop_closing_elements(circuit: Circuit) -> list[VoltageSource | Inductor]:
    """Voltage-defined elements that close a loop of V sources/inductors.

    A cycle made only of independent voltage sources and inductors
    (shorts at DC) over-determines KVL: the MNA branch rows become
    linearly dependent and the matrix is structurally singular.  The
    loop is found incrementally — the element whose edge joins two
    already-connected terminals closes it.  VCVS outputs are excluded:
    their branch voltage depends on the controlling nodes, so a loop
    through one is not necessarily rank-deficient.
    """
    dsu = DisjointSet()
    closing: list[VoltageSource | Inductor] = []
    for element in circuit:
        if not isinstance(element, (VoltageSource, Inductor)):
            continue
        if isinstance(element, VoltageSource):
            a, b = alias(element.np), alias(element.nn)
        else:
            a, b = alias(element.n1), alias(element.n2)
        if a == b:
            continue  # self-shorted: the E104 rule reports it
        if not dsu.union(a, b):
            closing.append(element)
    return closing


def attachment_map(
    circuit: Circuit, kinds: tuple[type, ...]
) -> dict[str, list[str]]:
    """Aliased node -> names of attached elements of the given kinds."""
    attach: dict[str, list[str]] = {}
    for element in circuit:
        if isinstance(element, kinds):
            # For controlled sources only the output branch terminals
            # inject current; controlling terminals are high-impedance.
            if isinstance(element, (Vccs, CurrentSource)):
                nodes: tuple[str, ...] = (element.np, element.nn)
            elif isinstance(element, Capacitor):
                nodes = (element.n1, element.n2)
            else:
                nodes = element.nodes
            for node in nodes:
                attach.setdefault(alias(node), []).append(element.name)
    return attach
