"""The shipped electrical/static rule catalog.

Codes are stable API: ``E0xx`` core structural rules (the
``Circuit.validate()`` subset), ``E1xx`` MNA rank/topology rules,
``E2xx`` naming, ``E3xx`` device geometry, ``W4xx`` analysis-specific
topology warnings, ``W5xx`` unit/value sanity warnings and ``I2xx``
informational notes.  See ``docs/LINTING.md`` for the catalog with
examples and fixes.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import SimulationError
from ..spice.netlist import (
    Capacitor,
    CurrentSource,
    GROUND_NAMES,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from .core import Finding, LintContext, Rule, register_rule
from .graph import GROUND, alias, loop_closing_elements

__all__ = ["CORE_RULES", "CANDIDATE_RULES"]

#: Codes of the fast subset ``Circuit.validate()`` runs (kept in sync
#: by the ``core=True`` registrations below; exported for callers that
#: want to extend the set explicitly).
CORE_RULES = ("E001", "E002", "E003", "E004", "E201")

#: Cheap per-candidate rules the synthesis gate re-runs for every
#: proposed sizing (topology rules run once per structure instead).
CANDIDATE_RULES = ("E004", "E301", "E302", "W504")


# ----------------------------------------------------------------------
# E0xx — core structural rules (the Circuit.validate() subset)
# ----------------------------------------------------------------------


@register_rule(
    "E001",
    "empty-circuit",
    summary="the circuit contains no elements",
    fix_hint="add at least one element before analyzing",
    core=True,
)
def _check_empty(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    if len(ctx.circuit) == 0:
        yield rule.finding("empty circuit")


@register_rule(
    "E002",
    "no-ground",
    summary="no element touches a ground node ('0'/'gnd')",
    fix_hint="reference one net to node '0' so node voltages are defined",
    core=True,
)
def _check_ground(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    if len(ctx.circuit) and not ctx.ground_present:
        yield rule.finding("no ground node")


@register_rule(
    "E003",
    "dangling-node",
    summary="a node with fewer than two element connections",
    fix_hint="connect the node to a second element or remove the stub",
    core=True,
)
def _check_dangling(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    degree: dict[str, int] = {}
    for element in ctx.circuit:
        for node in set(element.nodes):
            if node not in GROUND_NAMES:
                degree[node] = degree.get(node, 0) + 1
    dangling = sorted(n for n, d in degree.items() if d < 2)
    if dangling:
        yield rule.finding(
            f"dangling nodes {', '.join(dangling)} "
            "(each node needs >= 2 connections)",
            nodes=tuple(dangling),
        )


@register_rule(
    "E004",
    "nonpositive-capacitor",
    summary="a capacitor with value <= 0 (inconsistent transient stamps)",
    fix_hint="drop the element instead of setting it to zero",
    exception=SimulationError,
    core=True,
)
def _check_capacitors(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if isinstance(element, Capacitor) and element.value <= 0.0:
            yield rule.finding(
                f"capacitor {element.name} has non-positive value "
                f"{element.value:g} F; every simulated capacitor must "
                "be > 0 (drop the element instead of setting it to zero)",
                element=element.name,
                nodes=element.nodes,
            )


@register_rule(
    "E201",
    "duplicate-name",
    summary="element names that collide case-insensitively",
    fix_hint="rename one of the colliding elements (SPICE decks are "
    "case-insensitive, so they would merge on export)",
    core=True,
)
def _check_duplicate_names(
    rule: Rule, ctx: LintContext
) -> Iterator[Finding]:
    by_folded: dict[str, list[str]] = {}
    for element in ctx.circuit:
        by_folded.setdefault(element.name.upper(), []).append(element.name)
    for names in by_folded.values():
        if len(names) > 1:
            yield rule.finding(
                f"duplicate element names {', '.join(names)} "
                "(case-insensitive collision)",
                element=names[1],
            )


# ----------------------------------------------------------------------
# E1xx — MNA rank / topology rules (graph analysis, no matrix)
# ----------------------------------------------------------------------


@register_rule(
    "E101",
    "floating-gate",
    summary="a MOSFET gate with no DC path to ground or any source",
    fix_hint="add a DC bias path (resistor/divider) to the gate node, or "
    "tag the device with noqa('E101') for an intentionally "
    "AC-coupled gate",
)
def _check_floating_gate(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    if not ctx.ground_present:
        return  # E002 already reports the real problem
    for element in ctx.circuit:
        if not isinstance(element, Mosfet):
            continue
        gate = alias(element.ng)
        if not ctx.conduction.connected(gate, GROUND):
            yield rule.finding(
                f"gate of {element.name} (node {element.ng!r}) has no DC "
                "path to ground — its bias is undefined at DC",
                element=element.name,
                nodes=(element.ng,),
            )


@register_rule(
    "E102",
    "source-loop",
    summary="a loop of voltage sources/inductors (KVL over-determined, "
    "structurally singular MNA)",
    fix_hint="break the loop or add series resistance to one branch",
)
def _check_source_loops(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in loop_closing_elements(ctx.circuit):
        kind = (
            "voltage source"
            if isinstance(element, VoltageSource)
            else "inductor"
        )
        yield rule.finding(
            f"{kind} {element.name} closes a loop of voltage "
            "sources/inductors between "
            f"{element.nodes[0]!r} and {element.nodes[1]!r}; the branch "
            "currents are underdetermined (singular MNA matrix)",
            element=element.name,
            nodes=element.nodes[:2],
        )


@register_rule(
    "E103",
    "current-source-cutset",
    summary="current sources feeding a subcircuit with no DC return path "
    "(KCL over-determined, structurally singular MNA)",
    fix_hint="give the island a DC return path to ground (resistor or "
    "source), or remove the current source",
)
def _check_current_cutsets(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    if not ctx.ground_present:
        return
    for island in ctx.islands:
        sources = sorted(
            {
                name
                for node in island
                for name in ctx.current_attachments.get(node, ())
            }
        )
        if sources:
            yield rule.finding(
                f"current source(s) {', '.join(sources)} drive node(s) "
                f"{', '.join(sorted(island))} which have no DC path to "
                "ground; the injected current has no return path "
                "(singular MNA matrix)",
                element=sources[0],
                nodes=tuple(sorted(island)),
            )


@register_rule(
    "E104",
    "shorted-source",
    summary="a voltage source with both terminals on the same node",
    fix_hint="remove the source or rewire one terminal; the branch "
    "current is undefined",
)
def _check_shorted_sources(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if isinstance(element, (VoltageSource, Vcvs)) and alias(
            element.np
        ) == alias(element.nn):
            yield rule.finding(
                f"voltage source {element.name} is shorted (both "
                f"terminals on node {element.np!r}); its branch current "
                "is undefined (singular MNA matrix)",
                element=element.name,
                nodes=(element.np, element.nn),
            )


@register_rule(
    "W401",
    "no-dc-path",
    severity="warning",
    summary="nodes isolated from ground at DC (capacitor-coupled or "
    "sensing-only islands)",
    fix_hint="expected for switched-capacitor/AC-coupled nets; otherwise "
    "add a DC path — the operating point there is set only by "
    "the solver's gmin leakage",
)
def _check_no_dc_path(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    if not ctx.ground_present:
        return
    for island in ctx.islands:
        # Current-source-fed islands are the harder E103 error; islands
        # containing a MOS gate are already the E101 error.
        if any(ctx.current_attachments.get(node) for node in island):
            continue
        if island & ctx.gate_nodes:
            continue
        caps = sorted(
            {
                name
                for node in island
                for name in ctx.capacitor_attachments.get(node, ())
            }
        )
        coupling = (
            f"coupled only through capacitor(s) {', '.join(caps)}"
            if caps
            else "connected to no conducting element"
        )
        yield rule.finding(
            f"node(s) {', '.join(sorted(island))} have no DC path to "
            f"ground ({coupling}); their DC voltage is defined only by "
            "gmin leakage",
            element=caps[0] if caps else None,
            nodes=tuple(sorted(island)),
        )


@register_rule(
    "W402",
    "degenerate-element",
    severity="warning",
    summary="an element wired so it has no electrical effect",
    fix_hint="remove the element or fix the wiring",
)
def _check_degenerate(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if isinstance(
            element, (Resistor, Capacitor, Inductor, CurrentSource)
        ):
            n1, n2 = element.nodes[0], element.nodes[1]
            if alias(n1) == alias(n2):
                yield rule.finding(
                    f"{type(element).__name__.lower()} {element.name} has "
                    f"both terminals on node {n1!r} and does nothing",
                    element=element.name,
                    nodes=(n1, n2),
                )
        elif isinstance(element, Mosfet):
            if alias(element.nd) == alias(element.ns):
                yield rule.finding(
                    f"MOSFET {element.name} has drain and source on the "
                    f"same node {element.nd!r}; the channel is shorted",
                    element=element.name,
                    nodes=(element.nd, element.ns),
                )


# ----------------------------------------------------------------------
# I2xx — naming notes
# ----------------------------------------------------------------------

_CANONICAL_LETTER = {
    Resistor: "R",
    Capacitor: "C",
    Inductor: "L",
    VoltageSource: "V",
    CurrentSource: "I",
    Vcvs: "E",
    Vccs: "G",
    Mosfet: "M",
}


@register_rule(
    "I202",
    "misleading-name",
    severity="info",
    summary="an element whose name starts with a *different* element "
    "type's SPICE letter",
    fix_hint="rename the element so its leading letter matches its type "
    "(deck export renames it to avoid type confusion)",
)
def _check_name_letters(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    letters = frozenset(_CANONICAL_LETTER.values())
    for element in ctx.circuit:
        letter = _CANONICAL_LETTER[type(element)]
        lead = element.name[:1].upper()
        # Hierarchical prefixes ("X1RREF") are fine; only a leading
        # letter that *is* another element type's letter misleads.
        if lead != letter and lead in letters:
            yield rule.finding(
                f"{type(element).__name__.lower()} {element.name!r} "
                f"starts with {lead!r}, the SPICE letter of a different "
                f"element type; deck export will rename it to "
                f"{letter}_{element.name}",
                element=element.name,
            )


# ----------------------------------------------------------------------
# E3xx — device geometry vs. the active technology/model card
# ----------------------------------------------------------------------


@register_rule(
    "E301",
    "geometry-out-of-tech",
    summary="MOS W/L outside the technology's min/max drawn dimensions",
    fix_hint="clamp the geometry into [w_min, w_max] x [l_min, ...] of "
    "the active technology",
)
def _check_tech_geometry(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    tech = ctx.tech
    if tech is None:
        return  # no technology bound: rule not applicable
    for element in ctx.circuit:
        if not isinstance(element, Mosfet):
            continue
        problems: list[str] = []
        if element.w < tech.w_min:
            problems.append(f"W={element.w:g} < w_min={tech.w_min:g}")
        if element.w > tech.w_max:
            problems.append(f"W={element.w:g} > w_max={tech.w_max:g}")
        if element.l < tech.l_min:
            problems.append(f"L={element.l:g} < l_min={tech.l_min:g}")
        if problems:
            yield rule.finding(
                f"{element.name}: {'; '.join(problems)} for technology "
                f"{tech.name!r}",
                element=element.name,
            )


@register_rule(
    "E302",
    "nonpositive-leff",
    summary="drawn L <= 2*LD of the model card (effective length <= 0)",
    fix_hint="increase the drawn length above twice the model's lateral "
    "diffusion LD",
)
def _check_leff(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if not isinstance(element, Mosfet):
            continue
        ld = element.model.ld
        if element.l <= 2.0 * ld:
            yield rule.finding(
                f"{element.name}: drawn L={element.l:g} m <= 2*LD="
                f"{2.0 * ld:g} m of model {element.model.name!r}; the "
                "effective channel length is non-positive",
                element=element.name,
            )


# ----------------------------------------------------------------------
# W5xx — unit/value sanity
# ----------------------------------------------------------------------

#: Plausibility windows for integrated-circuit element values (SI).
_R_RANGE = (1e-2, 1e10)
_C_RANGE = (1e-18, 1e-5)
_L_RANGE = (1e-12, 10.0)
_GEOMETRY_RANGE = (1e-8, 1e-2)
_V_MAX = 1e3
_I_MAX = 1e2


@register_rule(
    "W501",
    "implausible-resistance",
    severity="warning",
    summary="a resistance far outside the plausible IC range",
    fix_hint="check the units — values parse as SI ohms (use '1k', "
    "'2.2Meg' engineering notation)",
)
def _check_resistances(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if isinstance(element, Resistor) and not (
            _R_RANGE[0] <= element.value <= _R_RANGE[1]
        ):
            yield rule.finding(
                f"resistor {element.name} = {element.value:g} ohm is "
                f"outside the plausible range [{_R_RANGE[0]:g}, "
                f"{_R_RANGE[1]:g}]",
                element=element.name,
            )


@register_rule(
    "W502",
    "implausible-capacitance",
    severity="warning",
    summary="a capacitance far outside the plausible IC range",
    fix_hint="check the units — values parse as SI farads (use '10p', "
    "'1.5n' engineering notation)",
)
def _check_capacitances(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if (
            isinstance(element, Capacitor)
            and element.value > 0.0
            and not (_C_RANGE[0] <= element.value <= _C_RANGE[1])
        ):
            yield rule.finding(
                f"capacitor {element.name} = {element.value:g} F is "
                f"outside the plausible range [{_C_RANGE[0]:g}, "
                f"{_C_RANGE[1]:g}]",
                element=element.name,
            )


@register_rule(
    "W503",
    "implausible-inductance",
    severity="warning",
    summary="an inductance far outside the plausible range",
    fix_hint="check the units — values parse as SI henries (use '10u', "
    "'1m' engineering notation)",
)
def _check_inductances(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if isinstance(element, Inductor) and not (
            _L_RANGE[0] <= element.value <= _L_RANGE[1]
        ):
            yield rule.finding(
                f"inductor {element.name} = {element.value:g} H is "
                f"outside the plausible range [{_L_RANGE[0]:g}, "
                f"{_L_RANGE[1]:g}]",
                element=element.name,
            )


@register_rule(
    "W504",
    "implausible-geometry",
    severity="warning",
    summary="MOS W/L that look like microns passed as metres (or vice "
    "versa)",
    fix_hint="geometries are SI metres: 10 um is 10e-6, not 10",
)
def _check_geometry_units(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    lo, hi = _GEOMETRY_RANGE
    for element in ctx.circuit:
        if not isinstance(element, Mosfet):
            continue
        odd = [
            f"{label}={value:g} m"
            for label, value in (("W", element.w), ("L", element.l))
            if not lo <= value <= hi
        ]
        if odd:
            yield rule.finding(
                f"{element.name}: {', '.join(odd)} outside "
                f"[{lo:g}, {hi:g}] — geometry is expressed in metres",
                element=element.name,
            )


@register_rule(
    "W505",
    "implausible-source-value",
    severity="warning",
    summary="an independent source with an extreme DC value",
    fix_hint="check the units of the source's DC value",
)
def _check_source_values(rule: Rule, ctx: LintContext) -> Iterator[Finding]:
    for element in ctx.circuit:
        if isinstance(element, VoltageSource) and abs(element.dc) > _V_MAX:
            yield rule.finding(
                f"voltage source {element.name} DC value {element.dc:g} V "
                f"exceeds {_V_MAX:g} V",
                element=element.name,
            )
        elif isinstance(element, CurrentSource) and abs(element.dc) > _I_MAX:
            yield rule.finding(
                f"current source {element.name} DC value {element.dc:g} A "
                f"exceeds {_I_MAX:g} A",
                element=element.name,
            )
