"""``repro.lint`` — pre-solve electrical rule checking (ERC).

A multi-pass static analyzer over :class:`~repro.spice.netlist.Circuit`
objects.  APE's value is catching infeasible designs *before* the
expensive optimization loop runs; this package extends that idea one
level down: structurally broken candidate circuits (floating gates,
voltage-source loops, current-source cutsets, out-of-technology
geometry) are rejected by graph analysis before a Newton solve is ever
attempted.

Entry points:

* :func:`lint_circuit` — run the rule catalog, get a
  :class:`LintReport`,
* ``Circuit.validate(strict=True)`` — raise on the first error finding,
* ``repro lint deck.cir`` — the CLI front end (text or JSON output),
* the synthesis engine gates every candidate through the cheap
  per-candidate subset (see
  :data:`repro.lint.rules.CANDIDATE_RULES`).

Findings carry stable codes (``E101`` floating gate, ...), severities
(``error``/``warning``/``info``) and fix-it hints; per-element
suppression uses :meth:`Circuit.noqa` tags or ``; noqa: E101`` comments
on SPICE deck cards.  The catalog lives in ``docs/LINTING.md``.
"""

from .core import (
    SEVERITIES,
    Finding,
    LintContext,
    LintReport,
    Rule,
    get_rule,
    lint_circuit,
    register_rule,
    registered_rules,
)
from .rules import CANDIDATE_RULES, CORE_RULES

__all__ = [
    "SEVERITIES",
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "get_rule",
    "lint_circuit",
    "register_rule",
    "registered_rules",
    "CORE_RULES",
    "CANDIDATE_RULES",
]
