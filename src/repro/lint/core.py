"""Lint infrastructure: findings, the rule registry, reports.

The analyzer is a multi-pass electrical rule checker over
:class:`~repro.spice.netlist.Circuit` objects.  Pass one builds shared
structural indexes (ground aliasing, the DC conduction components,
element attachment maps) in a :class:`LintContext`; pass two runs every
selected :class:`Rule` against that context; pass three drops
suppressed findings and orders the survivors by severity.

Rules are registered with :func:`register_rule` under stable codes
(``E101`` floating gate, ``W501`` implausible resistance, ...) so
suppressions and CI gates keep working as the catalog grows; see
``docs/LINTING.md`` for the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..errors import ApeError, NetlistError
from ..spice.netlist import Capacitor, Circuit, CurrentSource, Mosfet, Vccs
from .graph import (
    GROUND,
    DisjointSet,
    alias,
    attachment_map,
    conduction_edges,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..technology import Technology

__all__ = [
    "SEVERITIES",
    "Finding",
    "Rule",
    "LintContext",
    "LintReport",
    "register_rule",
    "registered_rules",
    "get_rule",
    "lint_circuit",
]

#: Recognized finding severities, mildest first.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation located in a circuit."""

    #: Stable rule code, e.g. ``"E101"``.
    code: str
    #: One of :data:`SEVERITIES` (may differ from the rule default).
    severity: str
    #: Human-readable description of the specific violation.
    message: str
    #: Primary offending element name (suppression anchor), if any.
    element: str | None = None
    #: Nodes involved in the violation.
    nodes: tuple[str, ...] = ()
    #: Rule-supplied fix-it hint.
    fix_hint: str = ""
    #: Short rule name, e.g. ``"floating-gate"``.
    rule_name: str = ""

    def render(self) -> str:
        where = f" [{self.element}]" if self.element else ""
        text = f"{self.code} {self.severity}{where}: {self.message}"
        if self.fix_hint:
            text += f" (fix: {self.fix_hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "rule": self.rule_name,
            "severity": self.severity,
            "message": self.message,
            "element": self.element,
            "nodes": list(self.nodes),
            "fix_hint": self.fix_hint,
        }


@dataclass(frozen=True)
class Rule:
    """One registered electrical/static rule."""

    #: Stable code: ``E``/``W``/``I`` prefix plus a 3-digit number.
    code: str
    #: Short kebab-case name, e.g. ``"floating-gate"``.
    name: str
    #: Default severity of this rule's findings.
    severity: str
    #: One-line description for the catalog.
    summary: str
    #: Default fix-it hint attached to findings.
    fix_hint: str
    #: Check callback: yields findings for one circuit.
    check: Callable[["LintContext"], Iterable[Finding]]
    #: Exception type ``Circuit.validate``/strict mode raises for this
    #: rule's error findings.
    exception: type[ApeError] = NetlistError
    #: Core rules form the fast ``Circuit.validate()`` subset that every
    #: simulation entry point runs; non-core rules need ``strict=True``,
    #: the CLI, or the synthesis gate.
    core: bool = False

    def finding(
        self,
        message: str,
        *,
        element: str | None = None,
        nodes: tuple[str, ...] = (),
        severity: str | None = None,
        fix_hint: str | None = None,
    ) -> Finding:
        """Build a finding pre-filled with this rule's metadata."""
        return Finding(
            code=self.code,
            severity=severity or self.severity,
            message=message,
            element=element,
            nodes=nodes,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            rule_name=self.name,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(
    code: str,
    name: str,
    *,
    severity: str = "error",
    summary: str,
    fix_hint: str = "",
    exception: type[ApeError] = NetlistError,
    core: bool = False,
) -> Callable[
    [Callable[["Rule", "LintContext"], Iterable[Finding]]],
    Rule,
]:
    """Decorator registering a check function as a :class:`Rule`.

    The decorated callable receives ``(rule, context)`` and yields
    findings; it is replaced by the bound :class:`Rule` object.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}")

    def decorate(
        fn: Callable[[Rule, LintContext], Iterable[Finding]]
    ) -> Rule:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")

        def check(ctx: LintContext) -> Iterable[Finding]:
            return fn(rule, ctx)

        rule = Rule(
            code=code,
            name=name,
            severity=severity,
            summary=summary,
            fix_hint=fix_hint,
            check=check,
            exception=exception,
            core=core,
        )
        _REGISTRY[code] = rule
        return rule

    return decorate


def registered_rules() -> tuple[Rule, ...]:
    """Every registered rule, in registration order."""
    return tuple(_REGISTRY.values())


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise NetlistError(
            f"unknown lint rule code {code!r} (known: {known})"
        ) from None


class LintContext:
    """Shared, lazily-built structural indexes for one lint run.

    Rules read these instead of re-walking the netlist so the graph
    analysis happens at most once per :func:`lint_circuit` call — and
    not at all for the cheap core subset ``Circuit.validate()`` runs.
    """

    def __init__(
        self, circuit: Circuit, tech: "Technology | None" = None
    ) -> None:
        self.circuit = circuit
        self.tech = tech

    @cached_property
    def ground_present(self) -> bool:
        return any(
            alias(node) == GROUND
            for element in self.circuit
            for node in element.nodes
        )

    @cached_property
    def conduction(self) -> DisjointSet:
        """Union-find of the DC conduction graph over aliased nodes."""
        dsu = DisjointSet()
        for element in self.circuit:
            for node in element.nodes:
                dsu.add(alias(node))
            for a, b in conduction_edges(element):
                dsu.union(a, b)
        dsu.add(GROUND)
        return dsu

    @cached_property
    def islands(self) -> tuple[frozenset[str], ...]:
        """Conduction components with no DC path to ground."""
        ground_root = self.conduction.find(GROUND)
        return tuple(
            nodes
            for root, nodes in sorted(self.conduction.components().items())
            if root != ground_root
        )

    @cached_property
    def current_attachments(self) -> dict[str, list[str]]:
        """Aliased node -> names of attached current-defined sources."""
        return attachment_map(self.circuit, (CurrentSource, Vccs))

    @cached_property
    def capacitor_attachments(self) -> dict[str, list[str]]:
        """Aliased node -> names of attached capacitors."""
        return attachment_map(self.circuit, (Capacitor,))

    @cached_property
    def gate_nodes(self) -> frozenset[str]:
        """Aliased nodes that drive at least one MOSFET gate."""
        return frozenset(
            alias(m.ng) for m in self.circuit if isinstance(m, Mosfet)
        )


class LintReport:
    """The ordered findings of one :func:`lint_circuit` run."""

    def __init__(self, circuit_title: str, findings: list[Finding]) -> None:
        self.circuit_title = circuit_title
        order = {sev: i for i, sev in enumerate(SEVERITIES)}
        #: Findings, most severe first (stable within a severity).
        self.findings: list[Finding] = sorted(
            findings, key=lambda f: -order[f.severity]
        )

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def infos(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "info"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was produced."""
        return not self.errors

    def codes(self) -> tuple[str, ...]:
        return tuple(f.code for f in self.findings)

    def raise_first(self) -> None:
        """Raise the registered exception for the first error finding."""
        errors = self.errors
        if not errors:
            return
        first = errors[0]
        raise get_rule(first.code).exception(
            f"{self.circuit_title}: {first.message}",
            context={
                "rule": first.code,
                "element": first.element,
                "nodes": list(first.nodes),
            },
        )

    def render(self) -> str:
        if not self.findings:
            return f"{self.circuit_title}: clean (no findings)"
        lines = [
            f"{self.circuit_title}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        ]
        lines.extend(f"  {finding.render()}" for finding in self.findings)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "circuit": self.circuit_title,
            "ok": self.ok,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __repr__(self) -> str:
        return (
            f"LintReport({self.circuit_title!r}, "
            f"{len(self.errors)}E/{len(self.warnings)}W/{len(self.infos)}I)"
        )


def lint_circuit(
    circuit: Circuit,
    *,
    tech: "Technology | None" = None,
    rules: Iterable[str] | None = None,
    core_only: bool = False,
    suppress: Iterable[str] | None = None,
) -> LintReport:
    """Run the electrical rule checker over ``circuit``.

    ``tech`` enables the technology-bound geometry rules (min/max W/L);
    without it they are skipped.  ``rules`` restricts the run to the
    given codes; ``core_only`` restricts it to the fast
    ``Circuit.validate()`` subset.  ``suppress`` drops codes globally;
    per-element suppression uses :meth:`Circuit.noqa` tags (or
    ``; noqa: <codes>`` comments on deck cards).
    """
    # Import for side effects: the rule catalog registers on import.
    from . import rules as _rules  # noqa: F401

    ctx = LintContext(circuit, tech)
    wanted = frozenset(rules) if rules is not None else None
    dropped = frozenset(suppress) if suppress is not None else frozenset()
    findings: list[Finding] = []
    for rule in registered_rules():
        if core_only and not rule.core:
            continue
        if wanted is not None and rule.code not in wanted:
            continue
        if rule.code in dropped:
            continue
        for finding in rule.check(ctx):
            if finding.element is not None and circuit.is_suppressed(
                finding.element, finding.code
            ):
                continue
            findings.append(finding)
    return LintReport(circuit.title, findings)
