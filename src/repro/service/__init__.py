"""Synthesis-as-a-service: durable job queue, admission, HTTP API.

The service layer turns the synthesis engine into a long-running,
crash-safe server (ROADMAP item 1).  See :mod:`repro.service.server`
for the HTTP contract, :mod:`repro.service.queue` for the durable
SQLite-WAL job queue and its lease/retry/quarantine semantics, and
``docs/SERVICE.md`` for the full API and robustness story.
"""

from .jobs import AdmissionError, JobRequest, admit, job_id_for
from .queue import JobQueue, JobRecord, QueueError
from .server import (
    ServiceConfig,
    ServiceServer,
    SynthesisService,
    run_service,
)
from .worker import CRASH_EXIT_CODE, JobWorker

__all__ = [
    "AdmissionError",
    "JobRequest",
    "admit",
    "job_id_for",
    "JobQueue",
    "JobRecord",
    "QueueError",
    "ServiceConfig",
    "ServiceServer",
    "SynthesisService",
    "run_service",
    "JobWorker",
    "CRASH_EXIT_CODE",
]
