"""Typed job model for the synthesis service.

A job is a self-contained synthesis request: op-amp spec, optional
topology override, extra constraints, and run parameters (seed,
restarts, evaluation budget).  Two submissions describing the same
problem — regardless of tenant — share one *problem fingerprint*
(:func:`repro.runtime.journal.run_fingerprint` over the canonical
request plus the technology), which is what the queue dedupes on and
what keys the job's run directory and shared evaluation store.

Admission control lives here too: :func:`admit` runs the interval
feasibility analyzer (:func:`repro.analysis.analyze_problem`) and
raises :class:`AdmissionError` for provably infeasible (F/C-coded)
specs, so a broken request is rejected in about a millisecond instead
of consuming a solve.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import ApeError, SpecificationError
from ..opamp import OpAmpSpec
from ..opamp.topology import OpAmpTopology
from ..runtime.journal import run_fingerprint
from ..units import parse_quantity

__all__ = [
    "JobRequest",
    "AdmissionError",
    "admit",
    "job_id_for",
]

#: Fingerprint schema tag — bump when the request canonicalisation
#: changes so stale queue rows can never alias a new problem.
_FINGERPRINT_KIND = "service-job/1"


def _qty(value: object) -> float:
    """Coerce a JSON payload number (or SI string like ``"2Meg"``)."""
    if isinstance(value, str):
        return math.inf if value == "inf" else parse_quantity(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecificationError(
            f"expected a number or SI-quantity string, got {value!r}"
        )
    return float(value)


def _require_str(value: object, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise SpecificationError(f"{what} must be a non-empty string")
    return value


def _require_int(value: object, what: str, *, minimum: int = 1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecificationError(f"{what} must be an integer")
    if value < minimum:
        raise SpecificationError(f"{what} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class JobRequest:
    """Canonical, validated synthesis request.

    Frozen and fully value-based: its :meth:`fingerprint` (and hence
    the queue's dedupe identity) is a pure function of the fields that
    affect the synthesis result.  ``tenant`` deliberately stays *out*
    of the fingerprint so identical problems from different tenants
    share one run and one warm store entry.
    """

    gain: float
    ugf: float
    ibias: float = 1e-6
    cl: float = 10e-12
    area: float = math.inf
    slew_rate: float = 0.0
    name: str = "opamp"
    mode: str = "ape"
    seed: int = 1
    restarts: int = 1
    max_evaluations: int = 150
    topology: tuple[tuple[str, Any], ...] | None = None
    constraints: tuple[tuple[str, str, float, float], ...] = ()
    tenant: str = "default"

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Parse and validate a POST /jobs JSON body.

        Accepts the same shape as the ``repro analyze --spec-file``
        fixtures (``spec`` / ``topology`` / ``constraints`` keys) plus
        run parameters at the top level.  Raises
        :class:`~repro.errors.SpecificationError` on malformed input —
        the server maps that to HTTP 400.
        """
        if not isinstance(payload, Mapping):
            raise SpecificationError("job payload must be a JSON object")
        known = {
            "spec", "topology", "constraints", "name", "mode", "seed",
            "restarts", "max_evaluations", "tenant",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecificationError(
                f"unknown job field(s): {', '.join(unknown)}"
            )
        spec_in = payload.get("spec")
        if not isinstance(spec_in, Mapping):
            raise SpecificationError("job payload requires a 'spec' object")
        if spec_in.get("gain") is None or spec_in.get("ugf") is None:
            raise SpecificationError("spec requires 'gain' and 'ugf'")

        topology: tuple[tuple[str, Any], ...] | None = None
        topo_in = payload.get("topology")
        if topo_in is not None:
            if not isinstance(topo_in, Mapping):
                raise SpecificationError("'topology' must be an object")
            topo = OpAmpTopology(
                current_source=_require_str(
                    topo_in.get("current_source", "mirror"), "current_source"
                ),
                diff_pair=_require_str(
                    topo_in.get("diff_pair", "cmos"), "diff_pair"
                ),
                gain_stage=topo_in.get("gain_stage"),
                output_buffer=bool(topo_in.get("output_buffer", False)),
                z_load=_qty(topo_in.get("z_load", "inf")),
            )
            topology = (
                ("current_source", topo.current_source),
                ("diff_pair", topo.diff_pair),
                ("gain_stage", topo.gain_stage),
                ("output_buffer", topo.output_buffer),
                ("z_load", topo.z_load),
            )

        constraints: list[tuple[str, str, float, float]] = []
        for entry in payload.get("constraints", ()):
            if not isinstance(entry, Mapping):
                raise SpecificationError(
                    "each constraint must be an object with "
                    "metric/kind/bound"
                )
            constraints.append((
                _require_str(entry.get("metric"), "constraint metric"),
                _require_str(entry.get("kind"), "constraint kind"),
                _qty(entry.get("bound")),
                float(entry.get("weight", 1.0)),
            ))

        request = cls(
            gain=_qty(spec_in["gain"]),
            ugf=_qty(spec_in["ugf"]),
            ibias=_qty(spec_in.get("ibias", "1u")),
            cl=_qty(spec_in.get("cl", "10p")),
            area=_qty(spec_in.get("area", "inf")),
            slew_rate=_qty(spec_in.get("slew_rate", 0.0)),
            name=_require_str(payload.get("name", "opamp"), "name"),
            mode=_require_str(payload.get("mode", "ape"), "mode"),
            seed=_require_int(payload.get("seed", 1), "seed", minimum=0),
            restarts=_require_int(payload.get("restarts", 1), "restarts"),
            max_evaluations=_require_int(
                payload.get("max_evaluations", 150), "max_evaluations"
            ),
            topology=topology,
            constraints=tuple(constraints),
            tenant=_require_str(payload.get("tenant", "default"), "tenant"),
        )
        # Materialise the spec once: OpAmpSpec.__post_init__ rejects
        # non-positive values, so a malformed request fails *here*
        # (HTTP 400), before anything fingerprints or enqueues it.
        request.spec()
        return request

    def spec(self) -> OpAmpSpec:
        """Materialise the op-amp spec (validates positivity)."""
        return OpAmpSpec(
            gain=self.gain,
            ugf=self.ugf,
            ibias=self.ibias,
            cl=self.cl,
            area=self.area,
            slew_rate=self.slew_rate,
        )

    def opamp_topology(self) -> OpAmpTopology | None:
        if self.topology is None:
            return None
        fields = dict(self.topology)
        return OpAmpTopology(
            current_source=str(fields["current_source"]),
            diff_pair=str(fields["diff_pair"]),
            gain_stage=fields["gain_stage"],
            output_buffer=bool(fields["output_buffer"]),
            z_load=float(fields["z_load"]),
        )

    def synthesis_spec(self) -> Any:
        from ..synthesis import opamp_synthesis_spec

        synth = opamp_synthesis_spec(self.spec())
        for metric, kind, bound, weight in self.constraints:
            synth.require(metric, kind, bound, weight=weight)
        return synth

    def to_payload(self) -> dict[str, Any]:
        """Canonical JSON form (round-trips through :meth:`from_payload`)."""
        payload: dict[str, Any] = {
            "spec": {
                "gain": self.gain,
                "ugf": self.ugf,
                "ibias": self.ibias,
                "cl": self.cl,
                "area": "inf" if math.isinf(self.area) else self.area,
                "slew_rate": self.slew_rate,
            },
            "name": self.name,
            "mode": self.mode,
            "seed": self.seed,
            "restarts": self.restarts,
            "max_evaluations": self.max_evaluations,
            "tenant": self.tenant,
        }
        if self.topology is not None:
            topo = dict(self.topology)
            if math.isinf(topo["z_load"]):
                topo["z_load"] = "inf"
            payload["topology"] = topo
        if self.constraints:
            payload["constraints"] = [
                {"metric": m, "kind": k, "bound": b, "weight": w}
                for m, k, b, w in self.constraints
            ]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    def fingerprint(self, tech: Any) -> str:
        """Problem identity: same fingerprint ⇒ bit-identical result."""
        return run_fingerprint(
            _FINGERPRINT_KIND,
            repr(tech),
            repr(self.spec()),
            repr(self.opamp_topology()),
            self.mode,
            self.constraints,
            self.seed,
            self.restarts,
            self.max_evaluations,
        )


def job_id_for(fingerprint: str) -> str:
    """Short, URL-safe job id derived from the problem fingerprint."""
    return fingerprint[:16]


class AdmissionError(ApeError):
    """Raised when the admission gate proves a request infeasible.

    Carries the full analyzer report so the server can return a
    structured 422 body (error codes, per-metric reasoning) without
    re-running anything.
    """

    def __init__(
        self,
        message: str,
        *,
        report: dict[str, Any] | None = None,
        error_codes: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message, context={"codes": ",".join(error_codes)})
        self.report: dict[str, Any] = dict(report or {})
        self.error_codes = error_codes


def admit(tech: Any, request: JobRequest) -> dict[str, Any]:
    """Run the pre-solve feasibility gate for a validated request.

    Returns the analyzer report dict on success; raises
    :class:`AdmissionError` when the interval analysis proves the spec
    unreachable (F codes) or self-contradictory (C codes).  Costs
    roughly a millisecond — no solver evaluation is consumed either
    way, which is the whole point of gating before enqueue.
    """
    from ..analysis import analyze_problem

    report = analyze_problem(
        tech,
        request.spec(),
        request.opamp_topology(),
        request.synthesis_spec(),
        mode=request.mode,
        name=request.name,
    )
    if not report.feasible:
        raise AdmissionError(
            "spec is provably infeasible for this technology",
            report=report.to_dict(),
            error_codes=tuple(report.error_codes),
        )
    return report.to_dict()
