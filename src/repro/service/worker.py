"""Job execution: lease, heartbeat, journal-backed resume, retry.

One :class:`JobWorker` drives the claim → execute → complete/fail
cycle against the durable :class:`~repro.service.queue.JobQueue`.
Every job runs through :func:`repro.synthesis.synthesize_opamp` with a
per-job ``run_dir`` (write-ahead journal) and the service-wide
``store_dir`` (shared evaluation store), so

* a job interrupted by a server crash resumes **bit-exact** from its
  journal on the next claim (chains already journaled are replayed,
  not re-run), and
* identical problems submitted later are served warm from the store.

The synthesis itself runs on a helper thread while the worker thread
stays responsive: it renews the queue lease, publishes progress
(chains done, best cost so far, straight from the journal), and hosts
the ``service.crash`` fault site — which hard-exits the whole process
(``os._exit(86)``), deliberately indistinguishable from ``kill -9``,
once at least one chain is durably journaled.  The ``job.poison``
fault site raises at the top of every execution attempt to exercise
the backoff/quarantine ladder.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

from ..errors import ApeError, SpecificationError
from ..runtime import faults
from ..runtime.diagnostics import Diagnostic, global_log
from ..runtime.journal import RunJournal
from .jobs import JobRequest
from .queue import JobQueue, JobRecord

__all__ = ["JobWorker", "CRASH_EXIT_CODE"]

#: Process exit status used by the ``service.crash`` fault site, so a
#: harness can tell an injected crash from any organic failure.
CRASH_EXIT_CODE = 86


def _journal_progress(run_dir: str) -> dict[str, Any]:
    """Chains-done / best-cost snapshot read from the run journal.

    Tolerant by construction: :meth:`RunJournal.events` already skips
    a torn trailing line, and a missing journal simply reports zero
    progress.
    """
    journal = RunJournal(run_dir)
    chains_done = 0
    best_cost: float | None = None
    if journal.exists():
        for event in journal.events():
            if event.get("event") != "chain-finished":
                continue
            chains_done += 1
            anneal = event.get("outcome", {}).get("anneal", {})
            cost = anneal.get("best_cost")
            if isinstance(cost, (int, float)) and (
                best_cost is None or cost < best_cost
            ):
                best_cost = float(cost)
    return {"chains_done": chains_done, "best_cost": best_cost}


def _result_summary(result: Any) -> dict[str, Any]:
    """JSON-ready summary of a :class:`SynthesisResult` (job row size)."""
    return {
        "name": result.name,
        "mode": result.mode,
        "meets_spec": result.meets_spec,
        "comment": result.comment,
        "best_cost": result.best_cost,
        "metrics": result.metrics,
        "params": result.params,
        "evaluations": result.evaluations,
        "failed_evaluations": result.failed_evaluations,
        "restarts": result.restarts,
        "degraded": result.degraded,
        "interrupted": result.interrupted,
        "worker_restarts": result.worker_restarts,
        "quarantined_chains": list(result.quarantined_chains),
        "resumed_chains": list(result.resumed_chains),
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "store_hits": result.store_hits,
        "store_writes": result.store_writes,
        "run_dir": result.run_dir,
        "chain_costs": [
            chain.best_cost for chain in result.chains
        ],
        "diagnostics": [
            {
                "subsystem": diag.subsystem,
                "severity": diag.severity,
                "message": diag.message,
            }
            for diag in result.diagnostics
        ],
    }


class JobWorker:
    """Claims jobs from the queue and executes them, one at a time."""

    def __init__(
        self,
        queue: JobQueue,
        tech: Any,
        data_dir: str | os.PathLike[str],
        *,
        owner: str,
        lease_seconds: float = 30.0,
        poll_interval_s: float = 0.2,
        synth_workers: int | None = 1,
        oversubscribe: bool = True,
        on_progress: Callable[[str, dict[str, Any]], None] | None = None,
    ) -> None:
        self.queue = queue
        self.tech = tech
        self.data_dir = os.fspath(data_dir)
        self.owner = owner
        self.lease_seconds = lease_seconds
        self.poll_interval_s = poll_interval_s
        self.synth_workers = synth_workers
        self.oversubscribe = oversubscribe
        self.on_progress = on_progress
        self.stop_event = threading.Event()
        #: Pause claiming without stopping a job in flight (drain).
        self.draining = threading.Event()
        self.jobs_done = 0
        self.jobs_failed = 0
        self.leases_lost = 0

    # ------------------------------------------------------------- layout

    def run_dir_for(self, job_id: str) -> str:
        return os.path.join(self.data_dir, "runs", job_id)

    @property
    def store_dir(self) -> str:
        return os.path.join(self.data_dir, "store")

    # -------------------------------------------------------------- loop

    def run_forever(self) -> None:
        """Claim/execute until :attr:`stop_event` is set."""
        while not self.stop_event.is_set():
            record = None
            if not self.draining.is_set():
                record = self.queue.claim(
                    self.owner, lease_seconds=self.lease_seconds
                )
            if record is None:
                self.stop_event.wait(self.poll_interval_s)
                continue
            self.execute(record)

    def execute(self, record: JobRecord) -> str:
        """Run one leased job to a terminal state; returns the state."""
        request = JobRequest.from_payload(record.payload)
        run_dir = self.run_dir_for(record.id)
        outcome: dict[str, Any] = {}

        def run_synthesis() -> None:
            try:
                faults.check(faults.JOB_POISON)
                outcome["result"] = self._synthesize(request, run_dir)
            except ApeError as exc:
                outcome["error"] = exc
            except Exception as exc:  # pragma: no cover - defensive
                global_log().record(
                    Diagnostic.from_exception(
                        "service.job",
                        exc,
                        severity="error",
                        suggested_fix=(
                            "unexpected non-ApeError during job "
                            "execution; the job follows the normal "
                            "retry/quarantine ladder"
                        ),
                        context={"job": record.id},
                    )
                )
                outcome["error"] = exc

        thread = threading.Thread(
            target=run_synthesis, name=f"synthesis-{record.id}", daemon=True
        )
        thread.start()
        # Monitor: heartbeat the lease, publish progress, host the
        # crash fault.  The heartbeat cadence stays well inside the
        # lease so a healthy job never loses it.
        interval = min(self.poll_interval_s, self.lease_seconds / 3.0)
        while thread.is_alive():
            thread.join(timeout=interval)
            if not thread.is_alive():
                break
            progress = _journal_progress(run_dir)
            if progress["chains_done"] >= 1 and faults.fires(
                faults.SERVICE_CRASH
            ):
                # Simulated kill -9: no cleanup, no flush, no queue
                # update.  The lease simply stops being renewed and a
                # restarted server reclaims the job from its journal.
                os._exit(CRASH_EXIT_CODE)
            if not self.queue.heartbeat(
                record.id, self.owner, lease_seconds=self.lease_seconds
            ):
                self.leases_lost += 1
            self.queue.update_progress(record.id, self.owner, progress)
            if self.on_progress is not None:
                self.on_progress(record.id, progress)

        error = outcome.get("error")
        if error is None and "result" in outcome:
            summary = _result_summary(outcome["result"])
            if self.queue.complete(record.id, self.owner, summary):
                self.jobs_done += 1
                return "done"
            self.leases_lost += 1
            return "lost"
        retryable = not isinstance(error, SpecificationError)
        state = self.queue.fail(
            record.id,
            self.owner,
            f"{type(error).__name__}: {error}",
            retryable=retryable,
        )
        if state == "lost":
            self.leases_lost += 1
        else:
            self.jobs_failed += 1
        return state

    def _synthesize(self, request: JobRequest, run_dir: str) -> Any:
        from ..synthesis import synthesize_opamp

        journal = RunJournal(run_dir)
        return synthesize_opamp(
            self.tech,
            request.spec(),
            request.opamp_topology(),
            mode=request.mode,
            synthesis_spec=request.synthesis_spec(),
            max_evaluations=request.max_evaluations,
            seed=request.seed,
            name=request.name,
            restarts=request.restarts,
            workers=self.synth_workers,
            oversubscribe=self.oversubscribe,
            run_dir=run_dir,
            resume=journal.exists(),
            store_dir=self.store_dir,
        )
