"""Stdlib HTTP front end for the durable synthesis service.

``repro serve`` builds a :class:`SynthesisService` (job queue + worker
threads) and a :class:`ServiceServer` (``http.server`` threading HTTP
listener) on top of it.  No third-party web framework: the container
bakes in only numpy/scipy/networkx, and the API surface is four JSON
routes:

``POST /jobs``
    Validate (400 on malformed payloads), admission-gate (422 with
    the full analyzer report for provably infeasible specs — costs a
    millisecond, never a solver evaluation), dedupe by problem
    fingerprint (an identical request attaches to the existing job or
    returns the finished result immediately), then enqueue (202).
    Overload — queue depth at its bound, or a tenant over its
    concurrent-job / evaluation-budget cap — returns 429 with a
    ``Retry-After`` header instead of queueing unbounded work.
``GET /jobs/{id}``
    The job row: state machine position, attempts, lease, progress
    (chains done / best cost so far), result or error.
``GET /healthz``
    200 while serving, 503 while draining.
``GET /stats``
    Queue depth and state counts, expired leases, busy retries,
    admission counters, aggregate store hit/write traffic and worker
    restarts across completed jobs.

Graceful shutdown: SIGTERM/SIGINT set the drain flag — the listener
answers 503, workers stop claiming, running jobs get a drain window to
finish, and whatever does not finish simply keeps its journal and its
queue row; the lease lapses and the next server run resumes it
bit-exact.  A ``kill -9`` is the same story minus the drain window,
which is the point of the design.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import urlparse

from ..errors import ApeError, SpecificationError
from ..runtime.diagnostics import Diagnostic, global_log
from .jobs import AdmissionError, JobRequest, admit
from .queue import JobQueue
from .worker import JobWorker

__all__ = ["ServiceConfig", "SynthesisService", "ServiceServer", "run_service"]


@dataclass
class ServiceConfig:
    """Tunables for one service instance."""

    host: str = "127.0.0.1"
    port: int = 0
    data_dir: str = "service-data"
    #: Worker threads claiming jobs (each runs one job at a time).
    service_workers: int = 1
    #: Process-pool width handed to each job's ``synthesize_opamp``.
    synth_workers: int | None = 1
    oversubscribe: bool = True
    lease_seconds: float = 15.0
    poll_interval_s: float = 0.2
    #: Admission bounds: total queued+running jobs, then per-tenant
    #: concurrent jobs and summed ``max_evaluations`` budget.
    max_queue_depth: int = 64
    tenant_max_active: int = 8
    tenant_max_evals: int = 100_000
    #: Retry ladder for failing jobs.
    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 30.0
    #: Hint returned with every 429.
    retry_after_s: float = 2.0
    #: How long a SIGTERM drain waits for running jobs.
    drain_timeout_s: float = 30.0
    #: Log each request to stderr (off keeps tests quiet).
    verbose: bool = False


@dataclass
class _AdmissionCounters:
    accepted: int = 0
    deduplicated: int = 0
    rejected_invalid: int = 0
    rejected_infeasible: int = 0
    rejected_overload: int = 0


class SynthesisService:
    """Queue + workers + admission control, independent of HTTP."""

    def __init__(self, tech: Any, config: ServiceConfig) -> None:
        self.tech = tech
        self.config = config
        self.queue = JobQueue(
            config.data_dir,
            max_attempts=config.max_attempts,
            backoff_base_s=config.backoff_base_s,
            backoff_cap_s=config.backoff_cap_s,
        )
        self.counters = _AdmissionCounters()
        self.draining = threading.Event()
        self.started = time.perf_counter()
        self.workers: list[JobWorker] = []
        self._threads: list[threading.Thread] = []
        for index in range(max(1, config.service_workers)):
            worker = JobWorker(
                self.queue,
                tech,
                config.data_dir,
                owner=f"worker-{os.getpid()}-{index}",
                lease_seconds=config.lease_seconds,
                poll_interval_s=config.poll_interval_s,
                synth_workers=config.synth_workers,
                oversubscribe=config.oversubscribe,
            )
            self.workers.append(worker)

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Reclaim any crashed-server leases, then start the workers."""
        self._warm_admission()
        self.queue.requeue_expired()
        for worker in self.workers:
            thread = threading.Thread(
                target=worker.run_forever,
                name=f"job-{worker.owner}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _warm_admission(self) -> None:
        """Pay the analyzer's import/compile cost once at startup.

        The first `analyze_problem` call imports the estimator stack
        and builds its interval tables (~100 ms); warming it here
        keeps the <50 ms admission-latency contract for the first
        real request too.
        """
        try:
            request = JobRequest(gain=100.0, ugf=2e6)
            admit(self.tech, request)
        except ApeError:
            pass  # warm-up analysis outcome is irrelevant, only its cost

    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop claiming, give running jobs a window, keep the queue.

        Returns True when every worker went idle inside the window.
        Jobs still running after the window keep their journal and
        queue row; their lease lapses and the next server resumes
        them — drain never cancels or loses work.
        """
        timeout = (
            self.config.drain_timeout_s if timeout_s is None else timeout_s
        )
        self.draining.set()
        for worker in self.workers:
            worker.draining.set()
        deadline = time.perf_counter() + timeout
        idle = False
        while time.perf_counter() < deadline:
            busy = [t for t in self._threads if t.is_alive()]
            if not busy:
                idle = True
                break
            depth_running = self.queue.stats()["jobs"]["running"]
            if depth_running == 0:
                idle = True
                break
            time.sleep(min(0.05, timeout / 20 if timeout > 0 else 0.05))
        for worker in self.workers:
            worker.stop_event.set()
        for thread in self._threads:
            thread.join(timeout=1.0)
        self.queue.close()
        return idle

    # ------------------------------------------------------------ requests

    def submit(self, payload: Any) -> tuple[int, dict[str, Any], float | None]:
        """Admission pipeline for POST /jobs.

        Returns ``(http_status, body, retry_after_or_None)``.
        """
        try:
            request = JobRequest.from_payload(payload)
        except (SpecificationError, ApeError) as exc:
            self.counters.rejected_invalid += 1
            return 400, {"error": str(exc), "kind": "invalid-request"}, None

        fingerprint = request.fingerprint(self.tech)

        # Dedupe first: attaching to existing work (or serving a
        # finished result warm) adds no load, so it must not be
        # subject to overload backpressure.
        existing = self.queue.get_by_fingerprint(fingerprint)
        if existing is not None:
            self.counters.deduplicated += 1
            return (
                200,
                {"job": existing.to_dict(), "deduplicated": True},
                None,
            )

        if self.draining.is_set():
            self.counters.rejected_overload += 1
            return (
                503,
                {"error": "server is draining", "kind": "draining"},
                self.config.retry_after_s,
            )

        try:
            # Spec-level validation (positivity, topology fields) and
            # the interval feasibility gate, both pre-solve.
            request.spec()
            report = admit(self.tech, request)
        except AdmissionError as exc:
            self.counters.rejected_infeasible += 1
            return (
                422,
                {
                    "error": str(exc),
                    "kind": "infeasible-spec",
                    "error_codes": list(exc.error_codes),
                    "report": exc.report,
                },
                None,
            )
        except (SpecificationError, ApeError) as exc:
            self.counters.rejected_invalid += 1
            return 400, {"error": str(exc), "kind": "invalid-request"}, None

        depth = self.queue.depth()
        if depth >= self.config.max_queue_depth:
            self.counters.rejected_overload += 1
            return (
                429,
                {
                    "error": (
                        f"queue depth {depth} at its bound "
                        f"{self.config.max_queue_depth}"
                    ),
                    "kind": "overloaded",
                },
                self.config.retry_after_s,
            )
        tenant_jobs, tenant_evals = self.queue.tenant_load(request.tenant)
        if tenant_jobs >= self.config.tenant_max_active:
            self.counters.rejected_overload += 1
            return (
                429,
                {
                    "error": (
                        f"tenant {request.tenant!r} already has "
                        f"{tenant_jobs} active job(s) "
                        f"(cap {self.config.tenant_max_active})"
                    ),
                    "kind": "tenant-jobs",
                },
                self.config.retry_after_s,
            )
        if tenant_evals + request.max_evaluations > self.config.tenant_max_evals:
            self.counters.rejected_overload += 1
            return (
                429,
                {
                    "error": (
                        f"tenant {request.tenant!r} evaluation budget "
                        f"{tenant_evals}+{request.max_evaluations} would "
                        f"exceed the cap {self.config.tenant_max_evals}"
                    ),
                    "kind": "tenant-budget",
                },
                self.config.retry_after_s,
            )

        record, created = self.queue.submit(request, fingerprint)
        if created:
            self.counters.accepted += 1
        else:
            # Lost a submit race: someone enqueued the same problem
            # between our dedupe check and our insert.  Same contract
            # as the dedupe path above.
            self.counters.deduplicated += 1
        body = {
            "job": record.to_dict(),
            "deduplicated": not created,
            "admission": {"feasible": True, "findings": report.get("findings", [])},
        }
        return (202 if created else 200), body, None

    def job_status(self, job_id: str) -> tuple[int, dict[str, Any]]:
        record = self.queue.get(job_id)
        if record is None:
            return 404, {"error": f"no job {job_id!r}", "kind": "not-found"}
        return 200, {"job": record.to_dict()}

    def healthz(self) -> tuple[int, dict[str, Any]]:
        if self.draining.is_set():
            return 503, {"ok": False, "draining": True}
        return 200, {
            "ok": True,
            "draining": False,
            "uptime_s": time.perf_counter() - self.started,
            "workers": len(self.workers),
        }

    def stats(self) -> tuple[int, dict[str, Any]]:
        queue_stats = self.queue.stats()
        totals = self.queue.aggregate_results()
        store_lookups = totals["store_hits"] + totals["cache_misses"]
        body = {
            "queue": queue_stats,
            "admission": {
                "accepted": self.counters.accepted,
                "deduplicated": self.counters.deduplicated,
                "rejected_invalid": self.counters.rejected_invalid,
                "rejected_infeasible": self.counters.rejected_infeasible,
                "rejected_overload": self.counters.rejected_overload,
            },
            "execution": {
                "jobs_done": sum(w.jobs_done for w in self.workers),
                "jobs_failed": sum(w.jobs_failed for w in self.workers),
                "leases_lost": sum(w.leases_lost for w in self.workers),
                "worker_restarts": totals["worker_restarts"],
            },
            "store": {
                "hits": totals["store_hits"],
                "writes": totals["store_writes"],
                "hit_rate": (
                    totals["store_hits"] / store_lookups
                    if store_lookups else 0.0
                ),
            },
            "uptime_s": time.perf_counter() - self.started,
        }
        return 200, body


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: SynthesisService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceHTTPServer  # type: ignore[assignment]

    def _send(
        self,
        status: int,
        body: dict[str, Any],
        *,
        retry_after: float | None = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if retry_after is not None:
            self.send_header("Retry-After", str(int(max(1, retry_after))))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.service.config.verbose:
            super().log_message(format, *args)

    def _guarded(self, respond: Callable[[], None]) -> None:
        """Never drop a connection: unexpected failures become 500s."""
        try:
            respond()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up; nothing to answer
        except Exception as exc:
            global_log().record(
                Diagnostic.from_exception(
                    "service.http",
                    exc,
                    severity="error",
                    suggested_fix=(
                        "unhandled exception answering a request; "
                        "returned HTTP 500"
                    ),
                    context={"path": self.path},
                )
            )
            try:
                self._send(
                    500,
                    {"error": f"{type(exc).__name__}: {exc}",
                     "kind": "internal"},
                )
            except OSError:
                pass  # connection already gone

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._guarded(self._post)

    def _post(self) -> None:
        path = urlparse(self.path).path
        if path != "/jobs":
            self._send(404, {"error": f"no route {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"null")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(
                400, {"error": f"bad JSON body: {exc}", "kind": "bad-json"}
            )
            return
        status, body, retry_after = self.server.service.submit(payload)
        self._send(status, body, retry_after=retry_after)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._guarded(self._get)

    def _get(self) -> None:
        path = urlparse(self.path).path
        service = self.server.service
        if path == "/healthz":
            status, body = service.healthz()
        elif path == "/stats":
            status, body = service.stats()
        elif path.startswith("/jobs/"):
            status, body = service.job_status(path[len("/jobs/"):])
        else:
            status, body = 404, {"error": f"no route {path!r}"}
        self._send(status, body)


class ServiceServer:
    """Owns the HTTP listener thread for one :class:`SynthesisService`."""

    def __init__(self, service: SynthesisService) -> None:
        self.service = service
        self.httpd = _ServiceHTTPServer(
            (service.config.host, service.config.port), service
        )
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return int(self.httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.service.config.host}:{self.port}"

    def start(self) -> None:
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self, *, drain_timeout_s: float | None = None) -> bool:
        """Drain the service, then stop the listener."""
        idle = self.service.drain(drain_timeout_s)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        return idle


def run_service(tech: Any, config: ServiceConfig) -> int:
    """Blocking entry point used by ``repro serve``.

    Installs SIGTERM/SIGINT handlers (main thread) that trigger a
    graceful drain: stop claiming, let running jobs checkpoint, leave
    the queue untouched, exit 0.
    """
    service = SynthesisService(tech, config)
    server = ServiceServer(service)
    stop = threading.Event()

    def request_stop(signum: int, frame: Any) -> None:
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, request_stop)
    server.start()
    print(f"repro service listening on {server.url}", flush=True)
    print(f"data dir: {os.path.abspath(config.data_dir)}", flush=True)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("draining: running jobs checkpoint, queue is kept", flush=True)
        idle = server.stop()
        print(
            "drained cleanly" if idle else
            "drain window elapsed; unfinished jobs will resume on restart",
            flush=True,
        )
    return 0
