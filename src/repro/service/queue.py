"""Durable SQLite-WAL job queue for the synthesis service.

The queue is the service's source of truth: every job survives a
``kill -9`` of the server because enqueue, lease, progress, and
completion are all single WAL transactions on ``jobs.sqlite`` in the
service data directory.  The connection handling mirrors
:class:`repro.store.EvalStore` (lazy open, re-open after ``fork``,
WAL + busy timeout) with two deliberate differences:

* **Failures raise, they do not degrade.**  The evaluation store is a
  cache, so a broken file costs speed; the queue is authoritative, so
  a broken database must surface as :class:`QueueError` (HTTP 500),
  never as silently dropped jobs.  Transient ``database is locked``
  errors are retried a bounded number of times first — the
  ``queue.busy`` fault site injects exactly that error so the retry
  loop is exact-count testable.
* **One connection, many threads.**  The HTTP handler pool and the
  worker loop share one process; the queue serialises access with an
  instance lock instead of per-thread connections, keeping WAL
  transactions short and ordered.

Job state machine::

    queued ──claim──▶ running ──complete──▶ done
      ▲                 │ fail(retryable, attempts left)
      │◀────backoff─────┘
      │                 │ fail(attempts exhausted) / crash-loop
      │                 ▼
      └──lease expiry  quarantined        fail(not retryable) ▶ failed

A claimed job holds a *lease* (wall-clock expiry, persisted — a
restarted server must honour leases written before the crash, which is
why these timestamps are epoch seconds and not ``time.monotonic``).
Workers renew the lease by heartbeat; a server killed mid-job simply
stops renewing, and the next ``claim`` on any server reclaims the job
once the lease lapses.  Retries back off exponentially (capped) via
``not_before``; a job whose attempts are exhausted — by failures *or*
by crash-looping servers — is quarantined, never retried silently.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..errors import ApeError
from ..runtime import faults
from .jobs import JobRequest, job_id_for

__all__ = [
    "JobQueue",
    "JobRecord",
    "QueueError",
    "QUEUE_FILENAME",
    "QUEUE_SCHEMA_VERSION",
    "JOB_STATES",
]

#: Database filename inside the service data directory.
QUEUE_FILENAME = "jobs.sqlite"

#: On-disk schema version; a mismatch refuses to serve rather than
#: guessing at a migration — the queue is authoritative state.
QUEUE_SCHEMA_VERSION = 1

#: Legal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "quarantined")

_CREATE_SQL = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS jobs (
        id            TEXT PRIMARY KEY,
        fingerprint   TEXT NOT NULL UNIQUE,
        tenant        TEXT NOT NULL,
        payload       TEXT NOT NULL,
        state         TEXT NOT NULL,
        attempts      INTEGER NOT NULL DEFAULT 0,
        max_evaluations INTEGER NOT NULL,
        submitted_at  REAL NOT NULL,
        not_before    REAL NOT NULL DEFAULT 0,
        lease_owner   TEXT,
        lease_expires REAL,
        started_at    REAL,
        finished_at   REAL,
        reclaims      INTEGER NOT NULL DEFAULT 0,
        result        TEXT,
        error         TEXT,
        progress      TEXT
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_jobs_state
        ON jobs (state, not_before, submitted_at)
    """,
)


class QueueError(ApeError):
    """The job queue could not complete an authoritative operation."""


def _json_or_none(text: str | None) -> dict[str, Any] | None:
    if text is None:
        return None
    loaded = json.loads(text)
    return loaded if isinstance(loaded, dict) else None


@dataclass(frozen=True)
class JobRecord:
    """One row of the jobs table, decoded."""

    id: str
    fingerprint: str
    tenant: str
    payload: dict[str, Any]
    state: str
    attempts: int
    max_evaluations: int
    submitted_at: float
    not_before: float
    lease_owner: str | None
    lease_expires: float | None
    started_at: float | None
    finished_at: float | None
    reclaims: int
    result: dict[str, Any] | None
    error: str | None
    progress: dict[str, Any] | None

    @classmethod
    def from_row(cls, row: sqlite3.Row) -> "JobRecord":
        return cls(
            id=row["id"],
            fingerprint=row["fingerprint"],
            tenant=row["tenant"],
            payload=json.loads(row["payload"]),
            state=row["state"],
            attempts=row["attempts"],
            max_evaluations=row["max_evaluations"],
            submitted_at=row["submitted_at"],
            not_before=row["not_before"],
            lease_owner=row["lease_owner"],
            lease_expires=row["lease_expires"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            reclaims=row["reclaims"],
            result=_json_or_none(row["result"]),
            error=row["error"],
            progress=_json_or_none(row["progress"]),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready public view of the job (GET /jobs/{id} body)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "tenant": self.tenant,
            "state": self.state,
            "attempts": self.attempts,
            "max_evaluations": self.max_evaluations,
            "submitted_at": self.submitted_at,
            "not_before": self.not_before,
            "lease_owner": self.lease_owner,
            "lease_expires": self.lease_expires,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "reclaims": self.reclaims,
            "request": self.payload,
            "result": self.result,
            "error": self.error,
            "progress": self.progress,
        }


class JobQueue:
    """Crash-safe job queue over one SQLite database.

    All public methods are thread-safe (one instance lock) and retry
    transient SQLite lock errors a bounded number of times before
    raising :class:`QueueError`.  ``clock`` is injectable for tests;
    production uses wall-clock epoch seconds because leases and
    backoff gates are *persisted* and must stay meaningful across
    process restarts (a monotonic clock restarts with the machine).
    """

    def __init__(
        self,
        data_dir: str | os.PathLike[str],
        *,
        busy_timeout_s: float = 5.0,
        busy_retries: int = 5,
        max_attempts: int = 3,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.path = self.data_dir / QUEUE_FILENAME
        self.busy_timeout_s = busy_timeout_s
        self.busy_retries = busy_retries
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self._clock: Callable[[], float] = (
            clock if clock is not None
            else time.time  # deterministic-ok: persisted lease/backoff timestamps must survive restarts
        )
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None
        self._pid: int | None = None
        #: Observability counters (per queue handle, not persisted).
        self.busy_retries_seen = 0
        self.jobs_reclaimed = 0
        self.jobs_quarantined = 0

    # --------------------------------------------------------- connection

    def _connect(self) -> sqlite3.Connection:
        """The live connection for *this* process (caller holds lock)."""
        pid = os.getpid()
        if self._conn is not None and self._pid == pid:
            return self._conn
        # Post-fork (or first use): open fresh; an inherited parent
        # connection is intentionally leaked unused — closing it from
        # the child would corrupt the parent's handle.
        self._conn = None
        self._pid = pid
        try:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path,
                timeout=self.busy_timeout_s,
                check_same_thread=False,
                isolation_level=None,
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}"
            )
            for statement in _CREATE_SQL:
                conn.execute(statement)
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(QUEUE_SCHEMA_VERSION)),
                )
            elif row[0] != str(QUEUE_SCHEMA_VERSION):
                conn.close()
                raise QueueError(
                    f"job queue schema version {row[0]!r} != supported "
                    f"{QUEUE_SCHEMA_VERSION!r}",
                    context={"path": str(self.path)},
                )
        except (sqlite3.Error, OSError) as exc:
            self._conn = None
            raise QueueError(
                f"cannot open job queue: {exc}",
                context={"path": str(self.path)},
            ) from exc
        self._conn = conn
        return conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None and self._pid == os.getpid():
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
            self._conn = None

    def _transact(
        self,
        operation: str,
        fn: Callable[[sqlite3.Connection], Any],
        *,
        write: bool = True,
    ) -> Any:
        """Run ``fn`` in one (immediate) transaction with busy retry.

        The ``queue.busy`` fault site counts as a synthetic lock
        conflict: it consumes a retry exactly like a real one, so a
        capped fault spec can prove both the recovery path (fires <
        retries ⇒ success) and the exhaustion path (fires ≥ retries ⇒
        ``QueueError``).
        """
        with self._lock:
            last: Exception | None = None
            for attempt in range(self.busy_retries + 1):
                if attempt:
                    self.busy_retries_seen += 1
                    time.sleep(min(0.01 * (2 ** (attempt - 1)), 0.1))
                conn = self._connect()
                try:
                    if faults.fires(faults.QUEUE_BUSY):
                        raise sqlite3.OperationalError(
                            "database is locked (injected at queue.busy)"
                        )
                    if write:
                        conn.execute("BEGIN IMMEDIATE")
                    try:
                        out = fn(conn)
                    except Exception:
                        if write:
                            conn.execute("ROLLBACK")
                        raise
                    if write:
                        conn.execute("COMMIT")
                    return out
                except sqlite3.OperationalError as exc:
                    last = exc
                    continue
                except sqlite3.Error as exc:
                    raise QueueError(
                        f"job queue {operation} failed: {exc}",
                        context={"path": str(self.path)},
                    ) from exc
            raise QueueError(
                f"job queue {operation} kept hitting a locked database "
                f"after {self.busy_retries} retries",
                context={"path": str(self.path)},
            ) from last

    # ----------------------------------------------------------- lifecycle

    def submit(
        self, request: JobRequest, fingerprint: str
    ) -> tuple[JobRecord, bool]:
        """Enqueue a request; dedupe on fingerprint.

        Returns ``(record, created)``.  ``INSERT OR IGNORE`` on the
        unique fingerprint makes concurrent duplicate submissions
        first-writer-wins: every later caller attaches to the winner's
        row, so K parallel POSTs of one spec yield exactly one job.
        """
        job_id = job_id_for(fingerprint)
        now = self._clock()

        def op(conn: sqlite3.Connection) -> tuple[JobRecord, bool]:
            cursor = conn.execute(
                "INSERT OR IGNORE INTO jobs "
                "(id, fingerprint, tenant, payload, state, "
                " max_evaluations, submitted_at) "
                "VALUES (?, ?, ?, ?, 'queued', ?, ?)",
                (
                    job_id,
                    fingerprint,
                    request.tenant,
                    request.to_json(),
                    request.max_evaluations,
                    now,
                ),
            )
            created = cursor.rowcount == 1
            row = conn.execute(
                "SELECT * FROM jobs WHERE fingerprint=?", (fingerprint,)
            ).fetchone()
            if row is None:
                raise QueueError(
                    "job row vanished during submit",
                    context={"job": job_id},
                )
            return JobRecord.from_row(row), created

        record, created = self._transact("submit", op)
        return record, created

    def requeue_expired(self) -> int:
        """Reclaim running jobs whose lease has lapsed (crash recovery)."""
        now = self._clock()

        def op(conn: sqlite3.Connection) -> int:
            cursor = conn.execute(
                "UPDATE jobs SET state='queued', lease_owner=NULL, "
                "lease_expires=NULL, reclaims=reclaims+1 "
                "WHERE state='running' AND lease_expires IS NOT NULL "
                "AND lease_expires < ?",
                (now,),
            )
            return cursor.rowcount

        reclaimed = int(self._transact("requeue_expired", op))
        self.jobs_reclaimed += reclaimed
        return reclaimed

    def claim(
        self, owner: str, *, lease_seconds: float
    ) -> JobRecord | None:
        """Lease the oldest runnable job to ``owner`` (or ``None``).

        Also performs the two housekeeping sweeps every scheduler pass
        needs: expired-lease reclamation and quarantine of jobs whose
        attempts are exhausted (covers crash-looping servers, where
        the failure is a lease expiry rather than an exception).
        """
        now = self._clock()

        def op(conn: sqlite3.Connection) -> tuple[JobRecord | None, int, int]:
            reclaimed = conn.execute(
                "UPDATE jobs SET state='queued', lease_owner=NULL, "
                "lease_expires=NULL, reclaims=reclaims+1 "
                "WHERE state='running' AND lease_expires IS NOT NULL "
                "AND lease_expires < ?",
                (now,),
            ).rowcount
            quarantined = conn.execute(
                "UPDATE jobs SET state='quarantined', finished_at=?, "
                "error=COALESCE(error, 'attempts exhausted "
                "(crash-looping job)') "
                "WHERE state='queued' AND attempts >= ?",
                (now, self.max_attempts),
            ).rowcount
            row = conn.execute(
                "SELECT * FROM jobs WHERE state='queued' AND not_before<=? "
                "ORDER BY submitted_at, id LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None, reclaimed, quarantined
            conn.execute(
                "UPDATE jobs SET state='running', attempts=attempts+1, "
                "lease_owner=?, lease_expires=?, "
                "started_at=COALESCE(started_at, ?) WHERE id=?",
                (owner, now + lease_seconds, now, row["id"]),
            )
            fresh = conn.execute(
                "SELECT * FROM jobs WHERE id=?", (row["id"],)
            ).fetchone()
            return JobRecord.from_row(fresh), reclaimed, quarantined

        record, reclaimed, quarantined = self._transact("claim", op)
        self.jobs_reclaimed += reclaimed
        self.jobs_quarantined += quarantined
        return record

    def heartbeat(
        self, job_id: str, owner: str, *, lease_seconds: float
    ) -> bool:
        """Renew ``owner``'s lease; ``False`` means the lease was lost."""
        now = self._clock()

        def op(conn: sqlite3.Connection) -> bool:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires=? "
                "WHERE id=? AND state='running' AND lease_owner=?",
                (now + lease_seconds, job_id, owner),
            )
            return cursor.rowcount == 1

        return bool(self._transact("heartbeat", op))

    def update_progress(
        self, job_id: str, owner: str, progress: dict[str, Any]
    ) -> None:
        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "UPDATE jobs SET progress=? "
                "WHERE id=? AND state='running' AND lease_owner=?",
                (json.dumps(progress), job_id, owner),
            )

        self._transact("update_progress", op)

    def complete(
        self, job_id: str, owner: str, result: dict[str, Any]
    ) -> bool:
        """Mark a leased job done; ``False`` if the lease was lost."""
        now = self._clock()

        def op(conn: sqlite3.Connection) -> bool:
            cursor = conn.execute(
                "UPDATE jobs SET state='done', result=?, finished_at=?, "
                "lease_owner=NULL, lease_expires=NULL "
                "WHERE id=? AND state='running' AND lease_owner=?",
                (json.dumps(result), now, job_id, owner),
            )
            return cursor.rowcount == 1

        return bool(self._transact("complete", op))

    def fail(
        self, job_id: str, owner: str, error: str, *, retryable: bool = True
    ) -> str:
        """Record a failed attempt; returns the job's new state.

        Retryable failures back off exponentially (``backoff_base_s *
        2^(attempts-1)``, capped) and re-queue until ``max_attempts``
        is reached, after which the job is quarantined as poison.
        Non-retryable failures go straight to ``failed``.
        """
        now = self._clock()

        def op(conn: sqlite3.Connection) -> str:
            row = conn.execute(
                "SELECT attempts FROM jobs "
                "WHERE id=? AND state='running' AND lease_owner=?",
                (job_id, owner),
            ).fetchone()
            if row is None:
                return "lost"
            attempts = int(row["attempts"])
            if not retryable:
                state = "failed"
            elif attempts >= self.max_attempts:
                state = "quarantined"
            else:
                state = "queued"
            if state == "queued":
                backoff = min(
                    self.backoff_base_s * (2.0 ** (attempts - 1)),
                    self.backoff_cap_s,
                )
                conn.execute(
                    "UPDATE jobs SET state='queued', error=?, "
                    "not_before=?, lease_owner=NULL, lease_expires=NULL "
                    "WHERE id=?",
                    (error, now + backoff, job_id),
                )
            else:
                conn.execute(
                    "UPDATE jobs SET state=?, error=?, finished_at=?, "
                    "lease_owner=NULL, lease_expires=NULL WHERE id=?",
                    (state, error, now, job_id),
                )
            return state

        state = str(self._transact("fail", op))
        if state == "quarantined":
            self.jobs_quarantined += 1
        return state

    # --------------------------------------------------------------- reads

    def get(self, job_id: str) -> JobRecord | None:
        def op(conn: sqlite3.Connection) -> JobRecord | None:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            return None if row is None else JobRecord.from_row(row)

        record = self._transact("get", op, write=False)
        return record  # type: ignore[no-any-return]

    def get_by_fingerprint(self, fingerprint: str) -> JobRecord | None:
        def op(conn: sqlite3.Connection) -> JobRecord | None:
            row = conn.execute(
                "SELECT * FROM jobs WHERE fingerprint=?", (fingerprint,)
            ).fetchone()
            return None if row is None else JobRecord.from_row(row)

        record = self._transact("get_by_fingerprint", op, write=False)
        return record  # type: ignore[no-any-return]

    def depth(self) -> int:
        """Jobs holding queue capacity (queued or running)."""

        def op(conn: sqlite3.Connection) -> int:
            row = conn.execute(
                "SELECT COUNT(*) AS n FROM jobs "
                "WHERE state IN ('queued', 'running')"
            ).fetchone()
            return int(row["n"])

        return int(self._transact("depth", op, write=False))

    def tenant_load(self, tenant: str) -> tuple[int, int]:
        """(active jobs, active evaluation budget) for one tenant."""

        def op(conn: sqlite3.Connection) -> tuple[int, int]:
            row = conn.execute(
                "SELECT COUNT(*) AS n, "
                "COALESCE(SUM(max_evaluations), 0) AS evals FROM jobs "
                "WHERE tenant=? AND state IN ('queued', 'running')",
                (tenant,),
            ).fetchone()
            return int(row["n"]), int(row["evals"])

        jobs, evals = self._transact("tenant_load", op, write=False)
        return int(jobs), int(evals)

    def aggregate_results(self) -> dict[str, int]:
        """Sum observability fields across completed jobs' results."""
        keys = (
            "store_hits", "store_writes", "cache_hits", "cache_misses",
            "worker_restarts", "evaluations",
        )

        def op(conn: sqlite3.Connection) -> dict[str, int]:
            totals = dict.fromkeys(keys, 0)
            for row in conn.execute(
                "SELECT result FROM jobs WHERE state='done'"
            ):
                result = _json_or_none(row["result"]) or {}
                for key in keys:
                    value = result.get(key)
                    if isinstance(value, (int, float)):
                        totals[key] += int(value)
            return totals

        totals = self._transact("aggregate_results", op, write=False)
        return totals  # type: ignore[no-any-return]

    def stats(self) -> dict[str, Any]:
        """Queue-level observability snapshot (GET /stats)."""
        now = self._clock()

        def op(conn: sqlite3.Connection) -> dict[str, Any]:
            by_state = {state: 0 for state in JOB_STATES}
            for row in conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ):
                by_state[row["state"]] = int(row["n"])
            expired = conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE state='running' "
                "AND lease_expires IS NOT NULL AND lease_expires < ?",
                (now,),
            ).fetchone()
            return {
                "jobs": by_state,
                "depth": by_state["queued"] + by_state["running"],
                "expired_leases": int(expired["n"]),
            }

        snapshot = self._transact("stats", op, write=False)
        snapshot.update(
            {
                "busy_retries": self.busy_retries_seen,
                "jobs_reclaimed": self.jobs_reclaimed,
                "jobs_quarantined": self.jobs_quarantined,
            }
        )
        return snapshot  # type: ignore[no-any-return]
