"""Process-pool execution of independent annealing chains.

The unit of work is a :class:`ChainTask` — a frozen, pickle-clean
description of one annealing restart (technology, spec, topology,
schedule, derived seed, budget share, fault configuration).  A task is
executed by :func:`run_chain`, either in-process or inside a worker of
a ``fork``-based :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract (locked in by ``tests/test_parallel.py``):

* Chain ``i`` anneals with seed ``derive_chain_seed(master_seed, i)``
  and, when fault injection is configured, a fault injector seeded
  ``derive_chain_seed(fault_seed, i)`` armed for the duration of the
  chain.  Both depend only on ``(seed, i)``.
* Candidate evaluation is *canonical* (history-independent), so a
  chain's result is a pure function of its task — never of which
  worker ran it, in what order, or what the shared memo cache already
  contained.  Results therefore depend only on ``(seed, restarts)``,
  not on the worker count or scheduling.
* While a fault injector is armed the chain bypasses the memo
  entirely: fault decisions are drawn per evaluation *call*, and a
  cache hit would skip that call, entangling the injector's stream
  with cache warmth (which does depend on scheduling).

Workers rebuild the sizing problem from the task description and keep
it cached per task signature — ``System.rebind`` then reuses the
compiled MNA engine across every candidate of every chain that worker
runs, instead of re-pickling solver state across the pool boundary.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field, replace as dc_replace

from ..runtime import faults
from ..runtime.budget import EvalBudget
from ..runtime.diagnostics import Diagnostic, DiagnosticLog
from ..runtime.retry import RetryPolicy
from ..synthesis.annealing import Annealer, AnnealingSchedule, AnnealResult
from ..synthesis.cost import CostFunction, FAILURE_COST
from .memo import DEFAULT_QUANTUM, EvalMemo

__all__ = [
    "ChainTask",
    "ChainOutcome",
    "derive_chain_seed",
    "effective_workers",
    "usable_cpu_count",
    "run_chain",
    "run_annealing_chains",
    "parallel_map",
]

#: Weyl increment (golden-ratio based) for per-chain seed derivation:
#: consecutive chain indices land far apart in seed space, and chain 0
#: keeps the master seed itself.
_SEED_STRIDE = 0x9E3779B97F4A7C15


def derive_chain_seed(master_seed: int, chain_index: int) -> int:
    """Deterministic per-chain seed; chain 0 is the master seed."""
    if chain_index == 0:
        return master_seed
    return (master_seed + _SEED_STRIDE * chain_index) % 2**63


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def effective_workers(
    requested: int | None, n_tasks: int, *, oversubscribe: bool = False
) -> int:
    """Clamp a worker request to the work and (by default) the CPUs.

    ``None`` asks for one worker per usable CPU.  Oversubscribing a
    CPU-bound annealing run only adds scheduling overhead, so requests
    beyond the affinity mask are clamped unless ``oversubscribe=True``
    (useful in tests, or when evaluations block on something other
    than the CPU).
    """
    limit = requested if requested is not None else usable_cpu_count()
    workers = max(1, min(limit, n_tasks))
    if not oversubscribe:
        workers = min(workers, usable_cpu_count())
    return workers


@dataclass(frozen=True)
class ChainTask:
    """Everything one annealing restart needs, pickle-clean."""

    tech: object
    spec: object
    topology: object | None
    mode: str
    synthesis_spec: object
    name: str
    range_factor: float
    max_evaluations: int
    schedule: AnnealingSchedule | None
    #: Master seed; the chain anneals with the derived per-chain seed.
    seed: int
    chain_index: int
    tolerant: bool = True
    lint: bool = True
    retry: RetryPolicy | None = None
    #: Shared wall-clock deadline as an absolute ``time.time()`` epoch
    #: (every chain stops at the same instant, wherever it runs).
    deadline_epoch: float | None = None
    max_failures: int | None = None
    per_eval_seconds: float | None = None
    #: Fault configuration re-armed inside the chain (None = leave the
    #: worker's fault state alone).
    fault_specs: tuple[faults.FaultSpec, ...] | None = None
    fault_seed: int = 0
    #: Evaluation memo quantum; ``None`` disables memoization.
    memo_quantum: float | None = DEFAULT_QUANTUM
    #: Evaluation profile: run-constant warm-started DC solves and
    #: in-place bench updates (both canonical, see the module docstring).
    warm_start: bool = True
    reuse_bench: bool = True

    def problem_key(self) -> bytes:
        """Signature of the sizing problem this task needs.

        Chains of one synthesis run (and repeated runs of the same
        table row) share the signature, so a worker builds the
        template, variables and compiled MNA system once and reuses
        them via ``System.rebind`` for every such chain.
        """
        return pickle.dumps(
            (
                self.tech,
                self.spec,
                self.topology,
                self.mode,
                self.synthesis_spec,
                self.name,
                self.range_factor,
                self.lint,
                self.memo_quantum,
                self.warm_start,
                self.reuse_bench,
            )
        )


@dataclass
class ChainOutcome:
    """One chain's result plus the counters the parent merges back."""

    chain_index: int
    seed: int
    anneal: AnnealResult
    degraded_design: bool = False
    ape_seconds: float = 0.0
    lint_rejections: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Worker-side memo snapshot for merging into the caller's cache
    #: (``None`` when the chain already wrote into a shared memo).
    memo_snapshot: dict | None = None


# Worker-local state, keyed by ChainTask.problem_key(): the sizing
# problem (with its compiled MNA system) and the worker's memo cache
# survive across the chains one worker executes.
_WORKER_BUNDLES: dict[bytes, tuple] = {}
_WORKER_MEMOS: dict[bytes, EvalMemo] = {}


def _memo_for(task: ChainTask, shared_memo: EvalMemo | None) -> EvalMemo | None:
    """The memo this chain evaluates through (shared, worker-local, none)."""
    if shared_memo is not None:
        return shared_memo
    if task.memo_quantum is None:
        return None
    key = task.problem_key()
    memo = _WORKER_MEMOS.get(key)
    if memo is None:
        memo = EvalMemo(task.memo_quantum)
        _WORKER_MEMOS[key] = memo
    return memo


def _bundle_for(task: ChainTask):
    """(x0, cost_fn, problem, design_notes, ape_seconds) for a task."""
    key = task.problem_key()
    bundle = _WORKER_BUNDLES.get(key)
    if bundle is None:
        from ..opamp import coarse_design_opamp, design_opamp
        from ..synthesis.problems import (
            OpAmpSizingProblem,
            ape_ranges,
            standalone_ranges,
        )
        from ..synthesis.specs import opamp_synthesis_spec

        t0 = time.perf_counter()
        design_notes: list = []
        if task.tolerant:
            template, design_notes = coarse_design_opamp(
                task.tech, task.spec, task.topology, name=task.name
            )
        else:
            template = design_opamp(
                task.tech, task.spec, task.topology, name=task.name
            )
        ape_seconds = time.perf_counter() - t0
        if task.mode == "ape":
            variables = ape_ranges(template, factor=task.range_factor)
            x0 = {
                v.name: min(
                    max(template.initial_point().get(v.name, v.lo), v.lo),
                    v.hi,
                )
                for v in variables
            }
        else:
            variables = standalone_ranges(template)
            x0 = None
        synthesis_spec = task.synthesis_spec
        if synthesis_spec is None:
            synthesis_spec = opamp_synthesis_spec(task.spec)
        cost_fn = CostFunction(synthesis_spec)
        problem = OpAmpSizingProblem(
            template,
            variables,
            lint=task.lint,
            warm_start=task.warm_start,
            reuse_bench=task.reuse_bench,
        )
        bundle = (x0, cost_fn, problem, design_notes, ape_seconds)
        _WORKER_BUNDLES[key] = bundle
    return bundle


def run_chain(task: ChainTask, shared_memo: EvalMemo | None = None) -> ChainOutcome:
    """Execute one annealing chain described by ``task``.

    Runs in a pool worker or in-process; behaviour is identical either
    way because everything the chain consumes is derived from the task
    (and because evaluation is canonical, shared-memo contents cannot
    change results — only how fast they arrive).
    """
    previous_injector = faults.active()
    if task.fault_specs is not None:
        faults.arm(
            faults.FaultInjector(
                {spec.site: spec for spec in task.fault_specs},
                seed=derive_chain_seed(task.fault_seed, task.chain_index),
            )
        )
    try:
        x0, cost_fn, problem, design_notes, ape_seconds = _bundle_for(task)
        memo = _memo_for(task, shared_memo)
        if faults.active() is not None:
            # Injected faults are decided per *call* from a seeded RNG
            # stream; a memo hit would skip those calls, making the
            # stream depend on cache warmth — which differs between
            # in-process and pooled scheduling.  Evaluate everything so
            # each chain's fault sequence is a pure function of its task.
            memo = None
        chain_log = DiagnosticLog(mirror=False)
        for note in design_notes:
            chain_log.record(note)
        problem.diagnostics = chain_log if task.tolerant else None
        retry = (
            dc_replace(task.retry, total_retries=0)
            if task.retry is not None
            else None
        )
        problem.retry = retry
        lint_before = problem.lint_rejections
        hits_before = memo.hits if memo is not None else 0
        misses_before = memo.misses if memo is not None else 0

        def evaluate(params):
            metrics = problem.evaluate(params)
            return cost_fn(metrics), metrics

        def evaluate_tolerant(params):
            from ..errors import ApeError

            try:
                return evaluate(params)
            except ApeError as exc:
                chain_log.record_exception(
                    "synthesis.evaluate",
                    exc,
                    severity="warning",
                    suggested_fix=(
                        "candidate penalized; see the exception chain"
                    ),
                )
                return FAILURE_COST, None

        chain_eval = evaluate_tolerant if task.tolerant else evaluate
        if memo is not None:
            chain_eval = memo.wrap(chain_eval)

        budget = None
        if (
            task.deadline_epoch is not None
            or task.max_failures is not None
            or task.per_eval_seconds is not None
        ):
            deadline = None
            if task.deadline_epoch is not None:
                deadline = max(task.deadline_epoch - time.time(), 1e-3)
            budget = EvalBudget(
                deadline_seconds=deadline,
                max_failures=task.max_failures,
                per_eval_seconds=task.per_eval_seconds,
            )

        annealer = Annealer(
            chain_eval,
            problem.bounds(),
            schedule=task.schedule,
            seed=derive_chain_seed(task.seed, task.chain_index),
        )
        result = annealer.run(
            x0=x0, max_evaluations=task.max_evaluations, budget=budget
        )
        return ChainOutcome(
            chain_index=task.chain_index,
            seed=derive_chain_seed(task.seed, task.chain_index),
            anneal=result,
            degraded_design=bool(design_notes),
            ape_seconds=ape_seconds,
            lint_rejections=problem.lint_rejections - lint_before,
            retries=retry.total_retries if retry is not None else 0,
            cache_hits=(memo.hits - hits_before) if memo is not None else 0,
            cache_misses=(
                (memo.misses - misses_before) if memo is not None else 0
            ),
            diagnostics=list(chain_log.records),
            memo_snapshot=(
                memo.export()
                if memo is not None and memo is not shared_memo
                else None
            ),
        )
    finally:
        if task.fault_specs is not None:
            if previous_injector is None:
                faults.disarm()
            else:
                faults.arm(previous_injector)


def run_annealing_chains(
    tasks: list[ChainTask],
    *,
    workers: int | None = None,
    memo: EvalMemo | None = None,
    oversubscribe: bool = False,
) -> list[ChainOutcome]:
    """Run every task and return outcomes ordered by chain index.

    With one effective worker the chains run in-process, sharing
    ``memo`` directly (plus the problem/MNA state across chains) — no
    pool, no pickling.  With more, a ``fork``-context process pool
    executes the tasks; each worker keeps its own memo and problem
    cache, and the snapshots are merged into ``memo`` afterwards so
    later runs (e.g. further table rows) start warm.
    """
    if not tasks:
        return []
    n_workers = effective_workers(
        workers, len(tasks), oversubscribe=oversubscribe
    )
    if n_workers <= 1:
        return [run_chain(task, shared_memo=memo) for task in tasks]

    import concurrent.futures
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=n_workers, mp_context=context
    ) as pool:
        outcomes = list(pool.map(run_chain, tasks))
    outcomes.sort(key=lambda outcome: outcome.chain_index)
    if memo is not None:
        for outcome in outcomes:
            if outcome.memo_snapshot is not None:
                memo.merge(outcome.memo_snapshot)
                outcome.memo_snapshot = None
    return outcomes


def parallel_map(
    fn,
    items,
    *,
    workers: int | None = None,
    oversubscribe: bool = False,
) -> list:
    """Order-preserving map over a process pool (in-process when 1).

    ``fn`` must be a module-level picklable callable and ``items``
    picklable values — the batched table runners fan benchmark rows
    through this with one row per task.
    """
    items = list(items)
    if not items:
        return []
    n_workers = effective_workers(
        workers, len(items), oversubscribe=oversubscribe
    )
    if n_workers <= 1:
        return [fn(item) for item in items]

    import concurrent.futures
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=n_workers, mp_context=context
    ) as pool:
        return list(pool.map(fn, items))
