"""Supervised process-pool execution of independent annealing chains.

The unit of work is a :class:`ChainTask` — a frozen, pickle-clean
description of one annealing restart (technology, spec, topology,
schedule, derived seed, budget share, fault configuration).  A task is
executed by :func:`run_chain`, either in-process or inside a worker of
a ``fork``-based :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism contract (locked in by ``tests/test_parallel.py`` and
``tests/test_supervisor.py``):

* Chain ``i`` anneals with seed ``derive_chain_seed(master_seed, i)``
  and, when fault injection is configured, a fault injector seeded
  ``derive_chain_seed(fault_seed, i)`` armed for the duration of the
  chain.  Both depend only on ``(seed, i)``.
* Candidate evaluation is *canonical* (history-independent), so a
  chain's result is a pure function of its task — never of which
  worker ran it, in what order, or what the shared memo cache already
  contained.  Results therefore depend only on ``(seed, restarts)``,
  not on the worker count, scheduling, or how many times a chain was
  re-run after its worker was lost.
* While a fault injector is armed the chain bypasses the memo
  entirely: fault decisions are drawn per evaluation *call*, and a
  cache hit would skip that call, entangling the injector's stream
  with cache warmth (which does depend on scheduling).

Supervision (:func:`run_supervised_chains`, built on
:mod:`repro.runtime.supervisor`): chains are submitted one-per-worker
and watched by the parent.  A killed worker (``BrokenProcessPool``)
or a hung one (stale heartbeat / chain deadline, the worker is then
killed) collapses the pool; the parent rebuilds it and resubmits only
the lost chains, with bounded retries and a quarantine list for poison
tasks.  SIGINT/SIGTERM drain in-flight chains and return the completed
outcomes.  Every completed chain can be journaled write-ahead
(:class:`~repro.runtime.journal.RunJournal`) so an interrupted run
resumes without repeating finished chains.

Workers rebuild the sizing problem from the task description and keep
it cached per task signature — ``System.rebind`` then reuses the
compiled MNA engine across every candidate of every chain that worker
runs, instead of re-pickling solver state across the pool boundary.
Worker caches die with their processes; the parent's pool teardown is
guaranteed on every exit path by
:class:`~repro.runtime.supervisor.PoolManager`.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field, replace as dc_replace

from ..runtime import faults
from ..runtime.budget import EvalBudget
from ..runtime.diagnostics import Diagnostic, DiagnosticLog
from ..runtime.retry import RetryPolicy
from ..runtime.supervisor import (
    PoolManager,
    SupervisionReport,
    SupervisorConfig,
    interrupt_guard,
)
from ..synthesis.annealing import Annealer, AnnealingSchedule, AnnealResult
from ..synthesis.cost import CostFunction, FAILURE_COST
from .memo import DEFAULT_QUANTUM, EvalMemo

__all__ = [
    "ChainTask",
    "ChainOutcome",
    "derive_chain_seed",
    "effective_workers",
    "usable_cpu_count",
    "run_chain",
    "run_annealing_chains",
    "run_supervised_chains",
    "clear_worker_caches",
    "parallel_map",
    "robust_variant_eval",
]

#: Weyl increment (golden-ratio based) for per-chain seed derivation:
#: consecutive chain indices land far apart in seed space, and chain 0
#: keeps the master seed itself.
_SEED_STRIDE = 0x9E3779B97F4A7C15


def derive_chain_seed(master_seed: int, chain_index: int) -> int:
    """Deterministic per-chain seed; chain 0 is the master seed."""
    if chain_index == 0:
        return master_seed
    return (master_seed + _SEED_STRIDE * chain_index) % 2**63


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def effective_workers(
    requested: int | None, n_tasks: int, *, oversubscribe: bool = False
) -> int:
    """Clamp a worker request to the work and (by default) the CPUs.

    ``None`` asks for one worker per usable CPU.  Oversubscribing a
    CPU-bound annealing run only adds scheduling overhead, so requests
    beyond the affinity mask are clamped unless ``oversubscribe=True``
    (useful in tests, or when evaluations block on something other
    than the CPU).
    """
    limit = requested if requested is not None else usable_cpu_count()
    workers = max(1, min(limit, n_tasks))
    if not oversubscribe:
        workers = min(workers, usable_cpu_count())
    return workers


@dataclass(frozen=True)
class ChainTask:
    """Everything one annealing restart needs, pickle-clean."""

    tech: object
    spec: object
    topology: object | None
    mode: str
    synthesis_spec: object
    name: str
    range_factor: float
    max_evaluations: int
    schedule: AnnealingSchedule | None
    #: Master seed; the chain anneals with the derived per-chain seed.
    seed: int
    chain_index: int
    tolerant: bool = True
    lint: bool = True
    retry: RetryPolicy | None = None
    #: Shared deadline as an absolute ``time.monotonic()`` instant
    #: (every chain stops at the same moment, wherever it runs: the
    #: pool's fork-started workers share the parent's per-boot
    #: CLOCK_MONOTONIC timebase, and unlike wall clock it cannot be
    #: stepped by NTP mid-run).
    deadline_epoch: float | None = None
    max_failures: int | None = None
    per_eval_seconds: float | None = None
    #: Fault configuration re-armed inside the chain (None = leave the
    #: worker's fault state alone).
    fault_specs: tuple[faults.FaultSpec, ...] | None = None
    fault_seed: int = 0
    #: Evaluation memo quantum; ``None`` disables memoization.
    memo_quantum: float | None = DEFAULT_QUANTUM
    #: Evaluation profile: run-constant warm-started DC solves and
    #: in-place bench updates (both canonical, see the module docstring).
    warm_start: bool = True
    reuse_bench: bool = True
    #: Optional :class:`~repro.synthesis.robust.RobustSpec` — when set,
    #: every candidate is evaluated across its corners/Monte Carlo
    #: samples and the chain anneals on the aggregated robust cost.
    robust: object | None = None
    #: Contracted search box from the feasibility gate, as a sorted
    #: ``((name, (lo, hi)), ...)`` tuple (``None`` = the mode's default
    #: ranges).  Part of the problem identity: chains with different
    #: boxes anneal different problems.
    box_override: tuple | None = None
    #: Persistent evaluation store (``None`` = in-memory memo only).
    #: Workers open the store read-only; new results travel home via
    #: the memo snapshot and the supervisor flushes them.
    store_dir: str | None = None
    #: The problem's content fingerprint in the store namespace.
    store_fingerprint: str | None = None
    #: Store watermark (max row id) at run start: the surrogate trains
    #: only on rows at or below it, so the training corpus — and hence
    #: the trajectory — is identical across workers and on resume.
    store_generation: int = 0
    #: Surrogate screening mode: ``"off"`` (classic loop, bit-identical
    #: to a store-less run) or ``"rank"`` (batch proposals, evaluate
    #: only the predicted best).
    surrogate: str = "off"

    def problem_key(self) -> bytes:
        """Signature of the sizing problem this task needs.

        Chains of one synthesis run (and repeated runs of the same
        table row) share the signature, so a worker builds the
        template, variables and compiled MNA system once and reuses
        them via ``System.rebind`` for every such chain.
        """
        return pickle.dumps(
            (
                self.tech,
                self.spec,
                self.topology,
                self.mode,
                self.synthesis_spec,
                self.name,
                self.range_factor,
                self.lint,
                self.memo_quantum,
                self.warm_start,
                self.reuse_bench,
                self.robust,
                self.box_override,
                self.store_dir,
                self.store_fingerprint,
            )
        )


@dataclass
class ChainOutcome:
    """One chain's result plus the counters the parent merges back."""

    chain_index: int
    seed: int
    anneal: AnnealResult
    degraded_design: bool = False
    ape_seconds: float = 0.0
    lint_rejections: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Robust-synthesis counters: logical per-corner/per-sample
    #: evaluations beyond the nominal ones, and candidates the nominal
    #: screen kept away from the corner fan-out.
    corner_evals: int = 0
    screened_candidates: int = 0
    #: Persistent-store lookups served from disk during this chain.
    store_hits: int = 0
    #: Surrogate-screen counters (0 with ``surrogate="off"``).
    surrogate_skips: int = 0
    surrogate_refits: int = 0
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Worker-side memo snapshot for merging into the caller's cache
    #: (``None`` when the chain already wrote into a shared memo).
    memo_snapshot: dict | None = None


# Worker-local state, keyed by ChainTask.problem_key(): the sizing
# problem (with its compiled MNA system) and the worker's memo cache
# survive across the chains one worker executes.  In pool workers the
# caches die with the process (PoolManager guarantees teardown); the
# in-process caches are bounded by the distinct problem signatures of
# one session and can be dropped with clear_worker_caches().
_WORKER_BUNDLES: dict[bytes, tuple] = {}
_WORKER_MEMOS: dict[bytes, EvalMemo] = {}
_WORKER_ROBUST: dict[bytes, object] = {}
#: Worker-local persistent-store handles, keyed by store directory.
#: Connections are opened lazily per process (EvalStore re-opens after
#: a fork), and pool workers hold them read-only.
_WORKER_STORES: dict[str, object] = {}

#: Fork-shared heartbeat slots (one double per chain index), set by the
#: parent just before it builds a pool and inherited by the workers.
_HEARTBEATS = None

#: True only inside a pool worker process (set by the pool
#: initializer).  Worker-level faults fire nowhere else: an injected
#: ``os._exit`` in the parent would take the whole run down instead of
#: simulating a lost worker.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def clear_worker_caches() -> None:
    """Drop the in-process problem-bundle, memo and store caches."""
    _WORKER_BUNDLES.clear()
    _WORKER_MEMOS.clear()
    _WORKER_ROBUST.clear()
    for store in _WORKER_STORES.values():
        store.close()
    _WORKER_STORES.clear()


def _heartbeat(chain_index: int) -> None:
    """Stamp this chain's liveness slot (no-op outside supervision)."""
    beats = _HEARTBEATS
    if beats is not None and 0 <= chain_index < len(beats):
        beats[chain_index] = time.monotonic()  # deterministic-ok: supervisor heartbeat


def _check_worker_faults(chain_index: int) -> None:
    """Fire an armed ``worker.kill`` / ``worker.hang`` fault, if any.

    Checked once per candidate evaluation, only inside pool workers.
    ``worker.kill`` hard-exits the process (the parent sees a broken
    pool, exactly like an OOM kill); ``worker.hang`` stops
    heartbeating and sleeps until the supervisor kills the worker.
    """
    injector = faults.active()
    if injector is None or not _IN_WORKER:
        return
    for site in (faults.WORKER_KILL, faults.WORKER_HANG):
        spec = injector.specs.get(site)
        if spec is None:
            continue
        if spec.chain is not None and spec.chain != chain_index:
            continue
        if not injector.fires_at(site):
            continue
        if site == faults.WORKER_KILL:
            os._exit(86)
        while True:  # pragma: no cover - killed from outside
            time.sleep(0.05)


def _strip_worker_faults(task: ChainTask) -> ChainTask:
    """Retry profile: worker loss was transient, drop ``worker.*`` specs.

    The stripped tuple stays a tuple (possibly empty) rather than
    ``None``: the retried chain must still arm its *own* injector so a
    fault configuration inherited from the forked parent cannot leak
    back in and re-kill the retry.
    """
    if task.fault_specs is None:
        return task
    kept = tuple(
        spec for spec in task.fault_specs
        if spec.site not in faults.WORKER_SITES
    )
    if kept == task.fault_specs:
        return task
    return dc_replace(task, fault_specs=kept)


def _worker_store(task: ChainTask):
    """The worker-local read-only store handle for a store-backed task."""
    if not task.store_dir or task.store_fingerprint is None:
        return None
    store = _WORKER_STORES.get(task.store_dir)
    if store is None:
        from ..store import EvalStore

        store = EvalStore(task.store_dir, read_only=True)
        _WORKER_STORES[task.store_dir] = store
    return store


def _memo_for(task: ChainTask, shared_memo: EvalMemo | None) -> EvalMemo | None:
    """The memo this chain evaluates through (shared, worker-local, none)."""
    if shared_memo is not None:
        return shared_memo
    if task.memo_quantum is None:
        return None
    key = task.problem_key()
    memo = _WORKER_MEMOS.get(key)
    if memo is None:
        memo = EvalMemo(task.memo_quantum)
        store = _worker_store(task)
        if store is not None:
            # Read-only tier: store hits serve lookups; the chain's new
            # entries ride the memo snapshot back to the supervisor,
            # which owns the write side.
            memo.bind_store(store, task.store_fingerprint)
        _WORKER_MEMOS[key] = memo
    return memo


def _bundle_for(task: ChainTask):
    """(x0, cost_fn, problem, design_notes, ape_seconds) for a task."""
    key = task.problem_key()
    bundle = _WORKER_BUNDLES.get(key)
    if bundle is None:
        from ..opamp import coarse_design_opamp, design_opamp
        from ..synthesis.problems import (
            OpAmpSizingProblem,
            ape_ranges,
            standalone_ranges,
        )
        from ..synthesis.specs import opamp_synthesis_spec

        t0 = time.perf_counter()
        design_notes: list = []
        if task.tolerant:
            template, design_notes = coarse_design_opamp(
                task.tech, task.spec, task.topology, name=task.name
            )
        else:
            template = design_opamp(
                task.tech, task.spec, task.topology, name=task.name
            )
        ape_seconds = time.perf_counter() - t0
        if task.mode == "ape":
            variables = ape_ranges(template, factor=task.range_factor)
        else:
            variables = standalone_ranges(template)
        if task.box_override is not None:
            from ..synthesis.problems import Variable

            override = dict(task.box_override)
            variables = [
                Variable(v.name, *override.get(v.name, (v.lo, v.hi)))
                for v in variables
            ]
        if task.mode == "ape":
            x0 = {
                v.name: min(
                    max(template.initial_point().get(v.name, v.lo), v.lo),
                    v.hi,
                )
                for v in variables
            }
        else:
            x0 = None
        synthesis_spec = task.synthesis_spec
        if synthesis_spec is None:
            synthesis_spec = opamp_synthesis_spec(task.spec)
        cost_fn = CostFunction(synthesis_spec)
        problem = OpAmpSizingProblem(
            template,
            variables,
            lint=task.lint,
            warm_start=task.warm_start,
            reuse_bench=task.reuse_bench,
        )
        bundle = (x0, cost_fn, problem, design_notes, ape_seconds)
        _WORKER_BUNDLES[key] = bundle
    return bundle


def _robust_evaluator_for(task: ChainTask):
    """The worker-cached :class:`RobustEvaluator` for a robust task.

    Shares the bundle's nominal problem (and its compiled MNA system);
    the corner/Monte Carlo problems live alongside it for every chain
    of the same signature this worker runs.  Returns ``None`` for
    plain (non-robust) tasks.
    """
    if task.robust is None:
        return None
    key = task.problem_key()
    evaluator = _WORKER_ROBUST.get(key)
    if evaluator is None:
        from ..synthesis.robust import RobustEvaluator

        _x0, cost_fn, problem, _notes, _ape = _bundle_for(task)
        evaluator = RobustEvaluator(
            problem.template,
            problem.variables,
            task.robust,
            cost_fn.spec,
            lint=task.lint,
            warm_start=task.warm_start,
            reuse_bench=task.reuse_bench,
            nominal_problem=problem,
        )
        _WORKER_ROBUST[key] = evaluator
    return evaluator


def robust_variant_eval(item):
    """Evaluate one ``(task, label, params)`` robust variant.

    Module-level so :func:`parallel_map` can fan the final corner
    verification of a winning design across the pool — corners become
    a second axis of parallelism next to chains.  Fault injection is
    suspended for the duration: verification is a reporting stage, and
    an inherited injector's stream position would differ between
    in-process and pooled execution.
    """
    task, label, params = item
    previous = faults.active()
    faults.disarm()
    try:
        evaluator = _robust_evaluator_for(task)
        return label, evaluator.evaluate_variant(label, params)
    finally:
        if previous is not None:
            faults.arm(previous)


def run_chain(task: ChainTask, shared_memo: EvalMemo | None = None) -> ChainOutcome:
    """Execute one annealing chain described by ``task``.

    Runs in a pool worker or in-process; behaviour is identical either
    way because everything the chain consumes is derived from the task
    (and because evaluation is canonical, shared-memo contents cannot
    change results — only how fast they arrive).
    """
    previous_injector = faults.active()
    if task.fault_specs is not None:
        faults.arm(
            faults.FaultInjector(
                {spec.site: spec for spec in task.fault_specs},
                seed=derive_chain_seed(task.fault_seed, task.chain_index),
            )
        )
    try:
        _heartbeat(task.chain_index)
        x0, cost_fn, problem, design_notes, ape_seconds = _bundle_for(task)
        memo = _memo_for(task, shared_memo)
        if faults.active() is not None:
            # Injected faults are decided per *call* from a seeded RNG
            # stream; a memo hit would skip those calls, making the
            # stream depend on cache warmth — which differs between
            # in-process and pooled scheduling.  Evaluate everything so
            # each chain's fault sequence is a pure function of its task.
            memo = None
        chain_log = DiagnosticLog(mirror=False)
        for note in design_notes:
            chain_log.record(note)
        problem.diagnostics = chain_log if task.tolerant else None
        retry = (
            dc_replace(task.retry, total_retries=0)
            if task.retry is not None
            else None
        )
        problem.retry = retry
        evaluator = _robust_evaluator_for(task)
        if evaluator is not None:
            # The evaluator (and its variant problems) is worker-cached
            # across chains; rebind this chain's log/retry/memo.  Memo
            # tagging happens inside the evaluator, so the outer
            # memo.wrap below stays nominal-only.
            evaluator.bind(
                diagnostics=chain_log if task.tolerant else None,
                retry=retry,
                memo=memo,
            )
        corner_before = (
            evaluator.corner_evaluations if evaluator is not None else 0
        )
        screened_before = (
            evaluator.screened_candidates if evaluator is not None else 0
        )
        lint_before = problem.lint_rejections
        hits_before = memo.hits if memo is not None else 0
        misses_before = memo.misses if memo is not None else 0
        store_hits_before = memo.store_hits if memo is not None else 0

        screen = None
        if task.surrogate == "rank":
            from ..store import SurrogateScreen

            screen = SurrogateScreen(
                problem.bounds().keys(),
                task.memo_quantum or DEFAULT_QUANTUM,
            )
            if (
                task.robust is None
                and task.store_generation > 0
                and memo is not None
                and memo.store_bound
            ):
                # Prime the model from the persistent corpus — but only
                # up to the journaled generation, so every worker (and
                # a bit-exact resume) trains on the identical rows.
                # Robust chains skip seeding: store rows hold nominal
                # costs, not the aggregated robust cost being annealed.
                screen.seed_corpus(
                    memo.bound_store.corpus(
                        memo.bound_fingerprint, task.store_generation
                    )
                )

        def evaluate(params):
            if evaluator is not None:
                return evaluator.evaluate(params)
            metrics = problem.evaluate(params)
            return cost_fn(metrics), metrics

        def evaluate_tolerant(params):
            from ..errors import ApeError

            try:
                return evaluate(params)
            except ApeError as exc:
                chain_log.record_exception(
                    "synthesis.evaluate",
                    exc,
                    severity="warning",
                    suggested_fix=(
                        "candidate penalized; see the exception chain"
                    ),
                )
                return FAILURE_COST, None

        chain_eval = evaluate_tolerant if task.tolerant else evaluate
        if memo is not None and evaluator is None:
            chain_eval = memo.wrap(chain_eval)

        def supervised_eval(params, _inner=chain_eval, _idx=task.chain_index):
            # Outermost wrapper: the fault decision and the heartbeat
            # are per *candidate*, cache hit or not, so the worker's
            # fault stream never depends on memo warmth.
            _check_worker_faults(_idx)
            _heartbeat(_idx)
            return _inner(params)

        budget = None
        if (
            task.deadline_epoch is not None
            or task.max_failures is not None
            or task.per_eval_seconds is not None
        ):
            deadline = None
            if task.deadline_epoch is not None:
                deadline = max(task.deadline_epoch - time.monotonic(), 1e-3)  # deterministic-ok: budget deadline (monotonic timebase, shared with the forking parent)
            budget = EvalBudget(
                deadline_seconds=deadline,
                max_failures=task.max_failures,
                per_eval_seconds=task.per_eval_seconds,
            )

        annealer = Annealer(
            supervised_eval,
            problem.bounds(),
            schedule=task.schedule,
            seed=derive_chain_seed(task.seed, task.chain_index),
            screen=screen,
        )
        result = annealer.run(
            x0=x0, max_evaluations=task.max_evaluations, budget=budget
        )
        return ChainOutcome(
            chain_index=task.chain_index,
            seed=derive_chain_seed(task.seed, task.chain_index),
            anneal=result,
            degraded_design=bool(design_notes),
            ape_seconds=ape_seconds,
            lint_rejections=problem.lint_rejections - lint_before,
            retries=retry.total_retries if retry is not None else 0,
            cache_hits=(memo.hits - hits_before) if memo is not None else 0,
            cache_misses=(
                (memo.misses - misses_before) if memo is not None else 0
            ),
            corner_evals=(
                evaluator.corner_evaluations - corner_before
                if evaluator is not None else 0
            ),
            screened_candidates=(
                evaluator.screened_candidates - screened_before
                if evaluator is not None else 0
            ),
            store_hits=(
                (memo.store_hits - store_hits_before)
                if memo is not None else 0
            ),
            surrogate_skips=result.surrogate_skips,
            surrogate_refits=result.surrogate_refits,
            diagnostics=list(chain_log.records),
            memo_snapshot=(
                memo.export()
                if memo is not None and memo is not shared_memo
                else None
            ),
        )
    finally:
        if task.fault_specs is not None:
            if previous_injector is None:
                faults.disarm()
            else:
                faults.arm(previous_injector)


def run_annealing_chains(
    tasks: list[ChainTask],
    *,
    workers: int | None = None,
    memo: EvalMemo | None = None,
    oversubscribe: bool = False,
    config: SupervisorConfig | None = None,
    journal=None,
) -> list[ChainOutcome]:
    """Run every task and return outcomes ordered by chain index.

    Thin wrapper over :func:`run_supervised_chains` for callers that
    only want the outcomes; note that with supervision an interrupted
    or quarantined run returns the chains that *did* complete.
    """
    outcomes, _report = run_supervised_chains(
        tasks,
        workers=workers,
        memo=memo,
        oversubscribe=oversubscribe,
        config=config,
        journal=journal,
    )
    return [outcomes[index] for index in sorted(outcomes)]


def run_supervised_chains(
    tasks: list[ChainTask],
    *,
    workers: int | None = None,
    memo: EvalMemo | None = None,
    oversubscribe: bool = False,
    config: SupervisorConfig | None = None,
    journal=None,
) -> tuple[dict[int, ChainOutcome], SupervisionReport]:
    """Run chains under supervision; return outcomes + what happened.

    With one effective worker the chains run in-process, sharing
    ``memo`` directly (plus the problem/MNA state across chains) — no
    pool, no pickling; supervision is reduced to graceful interrupt
    handling between chains.  With more, a ``fork``-context process
    pool executes the tasks one-per-worker while the parent watches
    for dead workers (``BrokenProcessPool``), hung ones (stale
    heartbeats, chain deadlines) and interrupts, rebuilding the pool
    and resubmitting only the lost chains within
    ``config.max_chain_retries``; chains that keep losing their worker
    are quarantined.  Completed chains are journaled write-ahead when
    ``journal`` is given, and worker memo snapshots are merged into
    ``memo`` as chains finish.

    The returned mapping holds one outcome per *completed* chain —
    interrupts and quarantines leave gaps instead of raising, so the
    caller can always assemble a best-so-far partial result.
    """
    config = config or SupervisorConfig()
    report = SupervisionReport()
    outcomes: dict[int, ChainOutcome] = {}
    if not tasks:
        return outcomes, report
    tasks = sorted(tasks, key=lambda task: task.chain_index)
    n_workers = effective_workers(
        workers, len(tasks), oversubscribe=oversubscribe
    )

    def finish(outcome: ChainOutcome) -> None:
        outcomes[outcome.chain_index] = outcome
        if memo is not None and outcome.memo_snapshot is not None:
            memo.merge(outcome.memo_snapshot)
            outcome.memo_snapshot = None
        if memo is not None:
            # Write-behind flush of this chain's new evaluations into
            # the persistent store (no-op when no store is bound).
            # Centralizing writes here keeps chain workers pure and
            # the on-disk result worker-count independent.
            memo.flush_store()
        if journal is not None:
            journal.record_outcome(outcome)
            if (
                memo is not None
                and config.memo_snapshot_every
                and len(outcomes) % config.memo_snapshot_every == 0
            ):
                journal.snapshot_memo(memo)

    def synthetic_stop() -> bool:
        return (
            config.interrupt_after is not None
            and len(outcomes) >= config.interrupt_after
        )

    def note_interrupt(pending_indices: list[int], detail: str) -> None:
        if report.interrupted:
            return
        report.interrupted = True
        report.record(
            "interrupted",
            detail=f"{detail}; unfinished chains: {pending_indices}",
        )
        if memo is not None:
            # Drain the write-behind store buffer at the moment of
            # interrupt: rows already paid for stay warm even if the
            # interrupted caller never reaches its own final flush
            # (second SIGINT, SIGTERM drain window elapsing).  The
            # in-process path can hold unflushed mid-chain entries
            # here; the pooled path is usually empty — either way the
            # flush is idempotent.
            memo.flush_store()
        if journal is not None:
            journal.append("interrupted", pending=pending_indices)
            if memo is not None:
                journal.snapshot_memo(memo)

    if n_workers <= 1:
        _run_in_process(
            tasks, memo, config, report,
            finish=finish,
            synthetic_stop=synthetic_stop,
            note_interrupt=note_interrupt,
            outcomes=outcomes,
        )
        return outcomes, report

    _run_pooled(
        tasks, n_workers, config, report,
        finish=finish,
        synthetic_stop=synthetic_stop,
        note_interrupt=note_interrupt,
        outcomes=outcomes,
        journal=journal,
    )
    return outcomes, report


def _run_in_process(
    tasks, memo, config, report, *, finish, synthetic_stop, note_interrupt,
    outcomes,
) -> None:
    def unfinished():
        return [
            task.chain_index for task in tasks
            if task.chain_index not in outcomes
        ]

    with interrupt_guard(config.install_signal_handlers) as stop:
        for task in tasks:
            if stop() or synthetic_stop():
                note_interrupt(unfinished(), "stop requested between chains")
                break
            try:
                outcome = run_chain(task, shared_memo=memo)
            except KeyboardInterrupt:
                note_interrupt(unfinished(), "interrupted mid-chain")
                break
            finish(outcome)


def _run_pooled(
    tasks, n_workers, config, report, *, finish, synthetic_stop,
    note_interrupt, outcomes, journal,
) -> None:
    import concurrent.futures
    import multiprocessing
    from concurrent.futures.process import BrokenProcessPool

    global _HEARTBEATS

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()

    heartbeats = context.Array(
        "d", max(task.chain_index for task in tasks) + 1, lock=False
    )
    clock = time.monotonic  # deterministic-ok: supervisor hang detection

    def factory():
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=_mark_worker,
        )

    pending: deque[ChainTask] = deque(tasks)
    in_flight: dict[object, ChainTask] = {}
    submitted_at: dict[int, float] = {}
    retries: dict[int, int] = {}
    kill_pending = False

    def journal_event(event: str, **payload) -> None:
        if journal is not None:
            journal.append(event, **payload)

    def unfinished() -> list[int]:
        return sorted(
            {task.chain_index for task in pending}
            | {task.chain_index for task in in_flight.values()}
        )

    def handle_collapse(lost: list[ChainTask], pm: PoolManager) -> None:
        """Rebuild the pool; resubmit, retry-bound or quarantine ``lost``."""
        nonlocal kill_pending
        kill_pending = False
        lost_indices = sorted(task.chain_index for task in lost)
        if report.interrupted:
            # Interrupt + collapse (e.g. terminal Ctrl-C reached the
            # workers too): the run is over, resume will redo the rest.
            journal_event("worker-lost", chains=lost_indices, interrupted=True)
            pending.clear()
            return
        for task in sorted(lost, key=lambda t: t.chain_index):
            index = task.chain_index
            retries[index] = retries.get(index, 0) + 1
            if retries[index] > config.max_chain_retries:
                report.quarantined.append(index)
                report.record(
                    "chain-quarantined", index,
                    f"lost its worker {retries[index]} times "
                    f"(max_chain_retries={config.max_chain_retries})",
                )
                journal_event("chain-quarantined", chain_index=index)
                continue
            report.chain_retries += 1
            report.record(
                "chain-retried", index,
                f"attempt {retries[index] + 1}",
            )
            journal_event("chain-retried", chain_index=index,
                          attempt=retries[index] + 1)
            retry_task = (
                _strip_worker_faults(task)
                if config.strip_worker_faults_on_retry else task
            )
            pending.append(retry_task)
        if pending:
            pm.rebuild()
            report.worker_restarts += 1
            report.record(
                "worker-restart", None,
                f"pool rebuilt after losing chains {lost_indices}",
            )
            journal_event("worker-restart", chains=lost_indices)

    def find_stuck() -> tuple[ChainTask, str] | None:
        now = clock()
        for task in in_flight.values():
            index = task.chain_index
            started = submitted_at.get(index, now)
            if (
                config.chain_timeout_seconds is not None
                and now - started > config.chain_timeout_seconds
            ):
                return task, "chain-timeout"
            if config.heartbeat_timeout_seconds is not None:
                beat = heartbeats[index]
                last_signal = beat if beat > started else started
                if now - last_signal > config.heartbeat_timeout_seconds:
                    return task, "chain-hung"
        return None

    _HEARTBEATS = heartbeats
    try:
        with PoolManager(factory) as pm, \
                interrupt_guard(config.install_signal_handlers) as stop:
            while pending or in_flight:
                stopping = stop() or synthetic_stop()
                if stopping:
                    note_interrupt(unfinished(), "stop requested")
                    if stop.hard:
                        # Second signal: abandon in-flight work too.
                        pm.kill_workers()
                        break
                    if not in_flight:
                        break
                # Top up: one in-flight chain per worker, so every
                # submitted future is actually running (which makes
                # hang detection and loss accounting exact).
                broken_on_submit = False
                while (
                    pending and len(in_flight) < n_workers and not stopping
                ):
                    task = pending.popleft()
                    heartbeats[task.chain_index] = 0.0
                    submitted_at[task.chain_index] = clock()
                    try:
                        future = pm.pool.submit(run_chain, task)
                    except BrokenProcessPool:
                        pending.appendleft(task)
                        broken_on_submit = True
                        break
                    in_flight[future] = task
                if broken_on_submit:
                    lost = list(in_flight.values())
                    in_flight.clear()
                    handle_collapse(lost, pm)
                    continue
                if not in_flight:
                    continue
                done, _ = concurrent.futures.wait(
                    list(in_flight),
                    timeout=config.poll_interval_seconds,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                lost: list[ChainTask] = []
                for future in done:
                    task = in_flight.pop(future)
                    try:
                        finish(future.result())
                    except (BrokenProcessPool,
                            concurrent.futures.CancelledError):
                        lost.append(task)
                if lost or getattr(pm.pool, "_broken", False):
                    # A broken pool takes every in-flight chain with it.
                    lost.extend(in_flight.values())
                    in_flight.clear()
                    handle_collapse(lost, pm)
                    continue
                if kill_pending:
                    continue  # workers already killed; wait for collapse
                stuck = find_stuck()
                if stuck is not None:
                    task, kind = stuck
                    report.record(
                        kind, task.chain_index,
                        "no heartbeat within "
                        f"{config.heartbeat_timeout_seconds}s"
                        if kind == "chain-hung" else
                        f"exceeded {config.chain_timeout_seconds}s deadline",
                    )
                    journal_event(kind, chain_index=task.chain_index)
                    kill_pending = True
                    pm.kill_workers()
    finally:
        _HEARTBEATS = None


def parallel_map(
    fn,
    items,
    *,
    workers: int | None = None,
    oversubscribe: bool = False,
) -> list:
    """Order-preserving map over a process pool (in-process when 1).

    ``fn`` must be a module-level picklable callable and ``items``
    picklable values — the batched table runners fan benchmark rows
    through this with one row per task.  Pool teardown is guaranteed
    on every exit path (PoolManager kills workers instead of waiting
    on them when an exception unwinds past a running task).
    """
    items = list(items)
    if not items:
        return []
    n_workers = effective_workers(
        workers, len(items), oversubscribe=oversubscribe
    )
    if n_workers <= 1:
        return [fn(item) for item in items]

    import concurrent.futures
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()

    def factory():
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=n_workers, mp_context=context
        )

    with PoolManager(factory) as pm:
        return list(pm.pool.map(fn, items))
