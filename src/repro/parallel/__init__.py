"""Parallel multi-chain synthesis execution and evaluation caching.

The paper's throughput story (APE makes annealing convergence a
minutes-scale affair) extends naturally to modern hardware: the
independent restarts of an ASTRX/OBLX-style search and the rows of the
evaluation tables are embarrassingly parallel, and annealing chains
re-visit enough exact candidate duplicates that a content-addressed
evaluation memo pays for itself even on one core.

* :class:`EvalMemo` — quantized log-space parameter key ->
  ``(cost, metrics)`` cache, shareable across chains and table rows.
* :class:`ChainTask` / :func:`run_chain` /
  :func:`run_supervised_chains` (and its thin
  :func:`run_annealing_chains` wrapper) — the supervised process-pool
  chain executor with a strict determinism contract (results depend
  only on ``(seed, restarts)``, never on worker count, scheduling, or
  crash recovery) plus worker crash/hang recovery, graceful interrupt
  drain and write-ahead journaling.
* :func:`parallel_map` — order-preserving pool map for batched table
  runners.

See ``docs/PERFORMANCE.md`` ("Parallel synthesis & evaluation
caching") for the worker model and the canonical-evaluation invariant
everything here rests on, and ``docs/ROBUSTNESS.md`` ("Supervision,
checkpointing & resume") for the recovery loop.
"""

from .executor import (
    ChainOutcome,
    ChainTask,
    derive_chain_seed,
    effective_workers,
    parallel_map,
    run_annealing_chains,
    run_chain,
    run_supervised_chains,
    usable_cpu_count,
)
from .memo import DEFAULT_CAPACITY, DEFAULT_QUANTUM, EvalMemo, memo_key

__all__ = [
    "ChainOutcome",
    "ChainTask",
    "DEFAULT_CAPACITY",
    "DEFAULT_QUANTUM",
    "EvalMemo",
    "derive_chain_seed",
    "effective_workers",
    "memo_key",
    "parallel_map",
    "run_annealing_chains",
    "run_chain",
    "run_supervised_chains",
    "usable_cpu_count",
]
