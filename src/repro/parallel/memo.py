"""Content-addressed memoization of candidate evaluations.

Annealing chains revisit parameter points far more often than one
would guess: every proposal that walks into a box bound is clamped
onto the bound itself, so at high temperature a large fraction of
moves land on *exactly* the same clamped coordinates, and independent
restarts share one template and therefore one bound box.  An
:class:`EvalMemo` caches ``(cost, metrics)`` per candidate under a
content-addressed key — the parameter dict quantized in log space —
so a repeated candidate costs a dictionary lookup instead of a DC
solve plus an AWE fit.

Correctness contract: memoization is only sound because
:meth:`~repro.synthesis.problems.OpAmpSizingProblem.evaluate` is
*canonical* (history-independent), so evicting or losing an entry can
never change a result — only how fast it arrives.  The parallel
executor relies on the same property for its scheduling independence,
and ``tests/test_parallel.py`` locks it in.

The memo is *bounded*: entries live in an LRU ordering and the oldest
are evicted once ``capacity`` is exceeded (long supervised runs and
multi-row table sessions would otherwise grow the cache without
limit).  Evictions are counted and surfaced through
``repro diagnostics``.

The memo is pickle-clean (plain dicts and tuples), so per-worker
caches can cross the process-pool boundary and be merged back into a
session-wide cache shared across chains and table rows.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Callable, Mapping

__all__ = ["EvalMemo", "memo_key", "DEFAULT_QUANTUM", "DEFAULT_CAPACITY"]

#: Quantization step in natural-log space.  1e-9 means two values map
#: to the same key only when they agree to ~1 part in 1e9 — far below
#: any physical tolerance in the flow, so a hit is a true duplicate
#: for every practical purpose, while float dust from clamping or
#: printing round-trips still collapses onto one key.
DEFAULT_QUANTUM = 1e-9

#: Default LRU capacity.  An entry is a quantized key plus a small
#: metrics dict (~a few hundred bytes), so the default bounds the memo
#: at tens of megabytes — far beyond any single run (a 4 x 250-eval
#: fan stores well under 1k entries) but a hard ceiling for week-long
#: supervised sessions sharing one memo across thousands of rows.
DEFAULT_CAPACITY = 65536

MemoKey = tuple[tuple[str, "int | str"], ...]
MemoValue = tuple[float, dict[str, float] | None]

#: Key-element name reserved for the evaluation-context tag.  It starts
#: with a NUL byte so it can never collide with a real parameter name.
_TAG_FIELD = "\x00tag"


def memo_key(
    params: Mapping[str, float],
    quantum: float = DEFAULT_QUANTUM,
    tag: str | None = None,
) -> MemoKey:
    """Content-addressed key: name-sorted, log-quantized parameters.

    Values are keyed by ``round(ln(v) / quantum)`` — a relative grid,
    which is the natural metric for geometric quantities spanning
    decades.  Non-positive values (never produced by the log-space
    annealer, but reachable through direct API use) fall back to an
    exact bit-pattern key (the float's repr — *not* ``hash()``, whose
    string randomization differs across processes) so they never
    collide with anything.

    ``tag`` names the evaluation context — corner/Monte Carlo-aware
    synthesis keys the same parameter dict per corner (``"corner:ss"``)
    and per mismatch sample (``"mc:3"``), so a shared memo can never
    hand a nominal result to a corner evaluation or vice versa.  The
    tag rides in the key as a reserved element whose field name cannot
    collide with a parameter, and string-valued elements round-trip
    the journal's JSON snapshot exactly like integers do.
    """
    items: list[tuple[str, int | str]] = []
    for name in sorted(params):
        value = params[name]
        if value > 0.0:
            items.append((name, round(math.log(value) / quantum)))
        else:
            # Exact fallback: the IEEE bits via the float's repr.
            items.append((name, repr(float(value))))
    if tag is not None:
        items.append((_TAG_FIELD, tag))
    return tuple(items)


class EvalMemo:
    """Bounded (LRU) shared cache of candidate evaluations.

    ``capacity`` caps the entry count (``None`` = unbounded); lookups
    refresh recency and stores evict the least-recently-used entries
    past the cap, counted in ``evictions``.
    """

    def __init__(
        self,
        quantum: float = DEFAULT_QUANTUM,
        *,
        capacity: int | None = DEFAULT_CAPACITY,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if capacity is not None and capacity <= 0:
            raise ValueError(
                f"capacity must be positive or None, got {capacity}"
            )
        self.quantum = quantum
        self.capacity = capacity
        self._data: OrderedDict[MemoKey, MemoValue] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # ------------------------------------------------------------- core API

    def key(
        self, params: Mapping[str, float], tag: str | None = None
    ) -> MemoKey:
        return memo_key(params, self.quantum, tag)

    def lookup(
        self, params: Mapping[str, float], tag: str | None = None
    ) -> MemoValue | None:
        """Cached ``(cost, metrics)`` or ``None``; counts the outcome."""
        key = self.key(params, tag)
        found = self._data.get(key)
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        self._data.move_to_end(key)
        cost, metrics = found
        # Hand out a copy: callers (and the annealer) may mutate metric
        # dicts, and a shared cache must never observe that.
        return cost, (dict(metrics) if metrics is not None else None)

    def store(
        self,
        params: Mapping[str, float],
        cost: float,
        metrics: dict[str, float] | None,
        tag: str | None = None,
    ) -> None:
        self._store_key(
            self.key(params, tag),
            (cost, dict(metrics) if metrics is not None else None),
        )
        self.stores += 1

    def _store_key(self, key: MemoKey, value: MemoValue) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        self._evict()

    def _evict(self) -> None:
        if self.capacity is None:
            return
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def wrap(
        self,
        evaluate: Callable[[dict[str, float]], MemoValue],
    ) -> Callable[[dict[str, float]], MemoValue]:
        """Cache-through wrapper around an ``evaluate(params)`` callable.

        Failed evaluations (``metrics is None``) are cached only while
        no fault injector is armed: injected faults are probabilistic
        per *call*, so caching one would turn a transient fault into a
        permanent verdict for that candidate and skew exact-count fault
        accounting.
        """
        from ..runtime import faults

        def cached(params: dict[str, float]) -> MemoValue:
            found = self.lookup(params)
            if found is not None:
                return found
            cost, metrics = evaluate(params)
            if metrics is not None or faults.active() is None:
                self.store(params, cost, metrics)
            return cost, metrics

        return cached

    # ----------------------------------------------------- stats and merging

    def __len__(self) -> int:
        return len(self._data)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def export(self) -> dict:
        """Picklable snapshot (entries + counters) for pool merging."""
        return {
            "quantum": self.quantum,
            "capacity": self.capacity,
            "data": dict(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
        }

    def merge(self, snapshot: "EvalMemo | dict") -> None:
        """Fold a worker's exported snapshot (or another memo) back in.

        Existing entries win: evaluation is canonical, so both sides
        hold the same value and keeping ours is free.  Counters add,
        giving session-wide hit/miss totals across the pool.  This
        memo's own ``capacity`` is enforced after the fold.
        """
        if isinstance(snapshot, EvalMemo):
            snapshot = snapshot.export()
        if snapshot["quantum"] != self.quantum:
            raise ValueError(
                "refusing to merge memos with different quanta: "
                f"{snapshot['quantum']} != {self.quantum}"
            )
        for key, value in snapshot["data"].items():
            if key not in self._data:
                self._store_key(key, value)
        self.hits += snapshot["hits"]
        self.misses += snapshot["misses"]
        self.stores += snapshot["stores"]
        self.evictions += snapshot.get("evictions", 0)
