"""Content-addressed memoization of candidate evaluations.

Annealing chains revisit parameter points far more often than one
would guess: every proposal that walks into a box bound is clamped
onto the bound itself, so at high temperature a large fraction of
moves land on *exactly* the same clamped coordinates, and independent
restarts share one template and therefore one bound box.  An
:class:`EvalMemo` caches ``(cost, metrics)`` per candidate under a
content-addressed key — the parameter dict quantized in log space —
so a repeated candidate costs a dictionary lookup instead of a DC
solve plus an AWE fit.

Correctness contract: memoization is only sound because
:meth:`~repro.synthesis.problems.OpAmpSizingProblem.evaluate` is
*canonical* (history-independent), so evicting or losing an entry can
never change a result — only how fast it arrives.  The parallel
executor relies on the same property for its scheduling independence,
and ``tests/test_parallel.py`` locks it in.

The memo is *bounded*: entries live in an LRU ordering and the oldest
are evicted once ``capacity`` is exceeded (long supervised runs and
multi-row table sessions would otherwise grow the cache without
limit).  Evictions are counted and surfaced through
``repro diagnostics``.

The memo is pickle-clean (plain dicts and tuples), so per-worker
caches can cross the process-pool boundary and be merged back into a
session-wide cache shared across chains and table rows.

Two-tier operation: :meth:`EvalMemo.bind_store` attaches a persistent
:class:`~repro.store.EvalStore` behind the LRU.  Lookups read through
(LRU first, then the store, promoting store hits into the LRU);
writes go behind (new entries are buffered and flushed in batches via
:meth:`EvalMemo.flush_store`).  Chain workers bind the store
*read-only* — their new entries travel home through the existing
snapshot/merge channel and the supervisor flushes them — so results
stay worker-count independent.  Losing the store tier (corruption,
locks) can never change a result, only how fast it arrives: the same
canonical-evaluation contract that makes LRU eviction safe.
"""

from __future__ import annotations

import itertools
import math
import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store import EvalStore

__all__ = ["EvalMemo", "memo_key", "DEFAULT_QUANTUM", "DEFAULT_CAPACITY"]

#: Per-process source of memo generation ids (see ``EvalMemo.generation``).
_GENERATION_COUNTER = itertools.count(1)

#: Quantization step in natural-log space.  1e-9 means two values map
#: to the same key only when they agree to ~1 part in 1e9 — far below
#: any physical tolerance in the flow, so a hit is a true duplicate
#: for every practical purpose, while float dust from clamping or
#: printing round-trips still collapses onto one key.
DEFAULT_QUANTUM = 1e-9

#: Default LRU capacity.  An entry is a quantized key plus a small
#: metrics dict (~a few hundred bytes), so the default bounds the memo
#: at tens of megabytes — far beyond any single run (a 4 x 250-eval
#: fan stores well under 1k entries) but a hard ceiling for week-long
#: supervised sessions sharing one memo across thousands of rows.
DEFAULT_CAPACITY = 65536

MemoKey = tuple[tuple[str, "int | str"], ...]
MemoValue = tuple[float, dict[str, float] | None]

#: Key-element name reserved for the evaluation-context tag.  It starts
#: with a NUL byte so it can never collide with a real parameter name.
_TAG_FIELD = "\x00tag"


def memo_key(
    params: Mapping[str, float],
    quantum: float = DEFAULT_QUANTUM,
    tag: str | None = None,
) -> MemoKey:
    """Content-addressed key: name-sorted, log-quantized parameters.

    Values are keyed by ``round(ln(v) / quantum)`` — a relative grid,
    which is the natural metric for geometric quantities spanning
    decades.  Non-positive values (never produced by the log-space
    annealer, but reachable through direct API use) fall back to an
    exact bit-pattern key (the float's repr — *not* ``hash()``, whose
    string randomization differs across processes) so they never
    collide with anything.

    ``tag`` names the evaluation context — corner/Monte Carlo-aware
    synthesis keys the same parameter dict per corner (``"corner:ss"``)
    and per mismatch sample (``"mc:3"``), so a shared memo can never
    hand a nominal result to a corner evaluation or vice versa.  The
    tag rides in the key as a reserved element whose field name cannot
    collide with a parameter, and string-valued elements round-trip
    the journal's JSON snapshot exactly like integers do.
    """
    items: list[tuple[str, int | str]] = []
    for name in sorted(params):
        value = params[name]
        if value > 0.0:
            items.append((name, round(math.log(value) / quantum)))
        else:
            # Exact fallback: the IEEE bits via the float's repr.
            items.append((name, repr(float(value))))
    if tag is not None:
        items.append((_TAG_FIELD, tag))
    return tuple(items)


class EvalMemo:
    """Bounded (LRU) shared cache of candidate evaluations.

    ``capacity`` caps the entry count (``None`` = unbounded); lookups
    refresh recency and stores evict the least-recently-used entries
    past the cap, counted in ``evictions``.
    """

    def __init__(
        self,
        quantum: float = DEFAULT_QUANTUM,
        *,
        capacity: int | None = DEFAULT_CAPACITY,
    ) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if capacity is not None and capacity <= 0:
            raise ValueError(
                f"capacity must be positive or None, got {capacity}"
            )
        self.quantum = quantum
        self.capacity = capacity
        self._data: OrderedDict[MemoKey, MemoValue] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.store_hits = 0
        self.store_writes = 0
        #: Identity of this memo instance across the pool boundary.
        #: Worker memos persist across chains, so their *cumulative*
        #: counters appear in every chain snapshot; the merge dedupes
        #: per generation id and adds only the delta (pid-qualified so
        #: a pool rebuild's fresh workers count as fresh generations).
        self.generation = f"{os.getpid()}:{next(_GENERATION_COUNTER)}"
        self._merged_counters: dict[str, dict[str, int]] = {}
        self._store: "EvalStore | None" = None
        self._fingerprint: str | None = None
        self._pending: OrderedDict[MemoKey, MemoValue] = OrderedDict()

    # ---------------------------------------------------------- store tier

    def bind_store(self, store: "EvalStore", fingerprint: str) -> None:
        """Attach a persistent store tier behind the LRU.

        ``fingerprint`` is the problem's content fingerprint — the
        store-side namespace this memo reads from and writes to.  A
        read-only store (chain workers) only serves lookups; new
        entries are buffered for the supervisor-side flush instead.
        """
        self._store = store
        self._fingerprint = fingerprint

    @property
    def store_bound(self) -> bool:
        return self._store is not None

    @property
    def bound_store(self) -> "EvalStore | None":
        return self._store

    @property
    def bound_fingerprint(self) -> str | None:
        return self._fingerprint

    @property
    def pending_writes(self) -> int:
        return len(self._pending)

    def _queue_write(self, key: MemoKey, value: MemoValue) -> None:
        if self._store is not None and not self._store.read_only:
            self._pending[key] = value

    def flush_store(self) -> int:
        """Write-behind flush of buffered entries; returns new rows.

        Safe to call repeatedly (the buffer drains) and cheap when the
        store has degraded (``put_many`` no-ops after a Diagnostic).
        """
        if self._store is None or self._fingerprint is None or not self._pending:
            return 0
        entries = list(self._pending.items())
        self._pending.clear()
        inserted = self._store.put_many(self._fingerprint, entries)
        self.store_writes += inserted
        return inserted

    # ------------------------------------------------------------- core API

    def key(
        self, params: Mapping[str, float], tag: str | None = None
    ) -> MemoKey:
        return memo_key(params, self.quantum, tag)

    def lookup(
        self, params: Mapping[str, float], tag: str | None = None
    ) -> MemoValue | None:
        """Cached ``(cost, metrics)`` or ``None``; counts the outcome.

        Reads through both tiers: an LRU miss falls back to the bound
        store (if any), and a store hit is promoted into the LRU so
        the hot set stays memory-resident under eviction pressure.
        """
        key = self.key(params, tag)
        found = self._data.get(key)
        if found is None:
            if self._store is not None and self._fingerprint is not None:
                found = self._store.get(self._fingerprint, key)
            if found is None:
                self.misses += 1
                return None
            self.store_hits += 1
            # Promote without queuing a write-behind: the entry came
            # *from* the store, so it is already persisted.
            self._store_key(key, found)
            cost, metrics = found
            return cost, (dict(metrics) if metrics is not None else None)
        self.hits += 1
        self._data.move_to_end(key)
        cost, metrics = found
        # Hand out a copy: callers (and the annealer) may mutate metric
        # dicts, and a shared cache must never observe that.
        return cost, (dict(metrics) if metrics is not None else None)

    def store(
        self,
        params: Mapping[str, float],
        cost: float,
        metrics: dict[str, float] | None,
        tag: str | None = None,
    ) -> None:
        key = self.key(params, tag)
        value = (cost, dict(metrics) if metrics is not None else None)
        self._store_key(key, value)
        self._queue_write(key, value)
        self.stores += 1

    def _store_key(self, key: MemoKey, value: MemoValue) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        self._evict()

    def _evict(self) -> None:
        if self.capacity is None:
            return
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def wrap(
        self,
        evaluate: Callable[[dict[str, float]], MemoValue],
    ) -> Callable[[dict[str, float]], MemoValue]:
        """Cache-through wrapper around an ``evaluate(params)`` callable.

        Failed evaluations (``metrics is None``) are cached only while
        no fault injector is armed: injected faults are probabilistic
        per *call*, so caching one would turn a transient fault into a
        permanent verdict for that candidate and skew exact-count fault
        accounting.
        """
        from ..runtime import faults

        def cached(params: dict[str, float]) -> MemoValue:
            found = self.lookup(params)
            if found is not None:
                return found
            cost, metrics = evaluate(params)
            if metrics is not None or faults.active() is None:
                self.store(params, cost, metrics)
            return cost, metrics

        return cached

    # ----------------------------------------------------- stats and merging

    def __len__(self) -> int:
        return len(self._data)

    @property
    def lookups(self) -> int:
        return self.hits + self.store_hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return (self.hits + self.store_hits) / total if total else 0.0

    #: Counter fields carried in snapshots and deduped on merge.
    _COUNTER_FIELDS = ("hits", "misses", "stores", "evictions", "store_hits")

    def export(self) -> dict:
        """Picklable snapshot (entries + counters) for pool merging."""
        return {
            "quantum": self.quantum,
            "capacity": self.capacity,
            "generation": self.generation,
            "data": dict(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "store_hits": self.store_hits,
        }

    def merge(self, snapshot: "EvalMemo | dict") -> None:
        """Fold a worker's exported snapshot (or another memo) back in.

        Existing entries win: evaluation is canonical, so both sides
        hold the same value and keeping ours is free.  This memo's own
        ``capacity`` is enforced after the fold, and entries new to
        this memo are queued for the write-behind store flush (the
        store's ``INSERT OR IGNORE`` makes re-queuing an entry the
        store already holds a no-op).

        Counters are deduped by the source memo's *generation id*:
        worker memos outlive a single chain, so each chain snapshot
        carries the worker's cumulative counters, and a pool rebuild
        can even deliver the same snapshot twice.  Per generation,
        only the delta beyond the last merged totals is added —
        merging a snapshot twice adds zero the second time.  Legacy
        snapshots without a generation (old journals) add plainly.
        """
        if isinstance(snapshot, EvalMemo):
            snapshot = snapshot.export()
        if snapshot["quantum"] != self.quantum:
            raise ValueError(
                "refusing to merge memos with different quanta: "
                f"{snapshot['quantum']} != {self.quantum}"
            )
        for key, value in snapshot["data"].items():
            if key not in self._data:
                self._store_key(key, value)
                self._queue_write(key, value)
        counters = {
            name: int(snapshot.get(name, 0)) for name in self._COUNTER_FIELDS
        }
        generation = snapshot.get("generation")
        if generation is None:
            deltas = counters
        else:
            last = self._merged_counters.get(generation, {})
            deltas = {
                name: value - last.get(name, 0)
                for name, value in counters.items()
            }
            if any(delta < 0 for delta in deltas.values()):
                # A counter went backwards: the generation id was
                # reused by a fresh memo (theoretically possible only
                # with pid recycling mid-run) — safest is to treat the
                # snapshot as new.
                deltas = counters
            self._merged_counters[generation] = counters
        self.hits += deltas["hits"]
        self.misses += deltas["misses"]
        self.stores += deltas["stores"]
        self.evictions += deltas["evictions"]
        self.store_hits += deltas["store_hits"]
