"""Deterministic, seedable fault injection for robustness testing.

The harness arms a process-wide :class:`FaultInjector`; instrumented
sites in the solver/estimator stack call :func:`check` (raise the
site's canonical exception when the fault fires) or :func:`fires`
(boolean query, used where the site degrades instead of raising).
With no injector armed both are near-free no-ops, so production runs
pay nothing.

All firing decisions come from one seeded ``random.Random``: a fixed
seed plus a fixed call sequence reproduces the exact same faults, which
lets tests assert *exact* failure counts, not statistical ones.

Instrumented sites:

``spice.dc``
    :func:`repro.spice.dc.dc_operating_point` raises
    :class:`~repro.errors.ConvergenceError` on entry.
``spice.dc.newton``
    The plain-Newton first attempt is skipped, forcing the
    gmin/source-stepping ladder to run.
``spice.dc.attempt``
    One whole solve attempt (ladder included) is voided, forcing the
    :class:`~repro.runtime.retry.RetryPolicy` path to fire.
``spice.awe``
    :func:`repro.spice.awe.awe_poles` raises
    :class:`~repro.errors.SimulationError`.
``estimator.opamp``
    :func:`repro.opamp.estimator.design_opamp` raises
    :class:`~repro.errors.EstimationError`.
``estimator.component``
    Level-2 component sizing raises
    :class:`~repro.errors.EstimationError`.
``synthesis.evaluate``
    One whole candidate evaluation fails (checked once per
    :meth:`~repro.synthesis.problems.OpAmpSizingProblem.evaluate`
    call, so the configured probability IS the per-evaluation
    failure rate).
``worker.kill`` / ``worker.hang``
    Process-level faults checked once per candidate evaluation by the
    parallel executor's worker loop, and only inside pool worker
    processes (never in-process, where they would take the caller
    down).  ``worker.kill`` hard-exits the worker (``os._exit``),
    collapsing the pool exactly like an OOM kill; ``worker.hang``
    stops heartbeating and sleeps until the supervisor kills the
    worker.  The optional ``chain`` field on :class:`FaultSpec`
    (``@N`` in ``REPRO_FAULTS``) restricts a fault to one chain
    index, so tests can kill *exactly one* worker deterministically.
``service.crash``
    Checked by the synthesis service's job monitor once per progress
    poll *after* at least one chain has been journaled; fires via
    ``os._exit`` so the whole server dies exactly like ``kill -9``,
    leaving a leased job with a partial journal for the restarted
    server to reclaim and resume bit-exact.
``queue.busy``
    Checked by every :class:`repro.service.queue.JobQueue` statement
    batch; fires as a synthetic ``sqlite3.OperationalError: database
    is locked`` to exercise the bounded busy-retry loop.
``job.poison``
    Checked once per job execution attempt by the service worker;
    raises :class:`~repro.errors.SimulationError` so the retry /
    exponential-backoff / quarantine ladder is exact-count testable.

Arm from code::

    with injected_faults({"spice.dc": 0.2}, seed=7) as injector:
        run_synthesis(...)
    assert injector.fires_by_site["spice.dc"] == expected

or from the environment (picked up by the CLI)::

    REPRO_FAULTS="seed=7,spice.dc=0.2,spice.awe=0.1:3" repro synthesize ...

where the optional ``:N`` suffix caps a site at N fires and the
optional ``@C`` suffix (worker sites) targets chain index C, e.g.
``REPRO_FAULTS="worker.kill=1.0:1@1"`` kills the worker running
chain 1, once.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import (
    ApeError,
    ConvergenceError,
    EstimationError,
    SimulationError,
)

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "KNOWN_SITES",
    "WORKER_KILL",
    "WORKER_HANG",
    "WORKER_SITES",
    "SERVICE_CRASH",
    "QUEUE_BUSY",
    "JOB_POISON",
    "arm",
    "disarm",
    "active",
    "injected_faults",
    "arm_from_env",
    "check",
    "fires",
]

#: Process-level fault sites consumed by the parallel executor's
#: worker loop (see the module docstring).  They never raise through
#: :func:`check`; the executor performs the kill/hang itself.
WORKER_KILL = "worker.kill"
WORKER_HANG = "worker.hang"
WORKER_SITES = frozenset({WORKER_KILL, WORKER_HANG})

#: Service-layer fault sites (see the module docstring).
#: ``service.crash`` hard-exits the server process (handled by the
#: service's job monitor, never via :func:`check`); ``queue.busy``
#: degrades into a synthetic SQLite lock inside the job queue;
#: ``job.poison`` raises through :func:`check` on job execution.
SERVICE_CRASH = "service.crash"
QUEUE_BUSY = "queue.busy"
JOB_POISON = "job.poison"

#: Canonical exception raised by :func:`check` for each site.
KNOWN_SITES: dict[str, type[ApeError]] = {
    "spice.dc": ConvergenceError,
    "spice.dc.newton": ConvergenceError,
    "spice.dc.attempt": ConvergenceError,
    "spice.awe": SimulationError,
    "estimator.opamp": EstimationError,
    "estimator.component": EstimationError,
    "synthesis.evaluate": SimulationError,
    JOB_POISON: SimulationError,
}


@dataclass(frozen=True)
class FaultSpec:
    """Configured failure behaviour of one instrumented site."""

    site: str
    probability: float = 1.0
    #: Stop firing after this many faults (``None`` = unlimited).
    max_fires: int | None = None
    #: Restrict the fault to one annealing-chain index (worker sites;
    #: ``None`` = every chain).  Ignored by sites with no chain scope.
    chain: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"{self.site}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(
                f"{self.site}: max_fires must be >= 0, got {self.max_fires}"
            )
        if self.chain is not None and self.chain < 0:
            raise ValueError(
                f"{self.site}: chain must be >= 0, got {self.chain}"
            )


class FaultInjector:
    """Seeded fault source with per-site check/fire counters."""

    def __init__(
        self,
        specs: Mapping[str, float | FaultSpec] | Iterator[FaultSpec],
        seed: int = 0,
    ) -> None:
        self.specs: dict[str, FaultSpec] = {}
        if isinstance(specs, Mapping):
            for site, value in specs.items():
                spec = (
                    value
                    if isinstance(value, FaultSpec)
                    else FaultSpec(site, probability=float(value))
                )
                self.specs[site] = spec
        else:
            for spec in specs:
                self.specs[spec.site] = spec
        self.seed = seed
        self.rng = random.Random(seed)
        self.checks_by_site: dict[str, int] = {}
        self.fires_by_site: dict[str, int] = {}

    def fires_at(self, site: str) -> bool:
        """Decide (and record) whether the fault at ``site`` fires now."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        self.checks_by_site[site] = self.checks_by_site.get(site, 0) + 1
        if (
            spec.max_fires is not None
            and self.fires_by_site.get(site, 0) >= spec.max_fires
        ):
            return False
        if self.rng.random() >= spec.probability:
            return False
        self.fires_by_site[site] = self.fires_by_site.get(site, 0) + 1
        return True

    def total_fires(self) -> int:
        return sum(self.fires_by_site.values())


_ACTIVE: FaultInjector | None = None


def arm(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` as the process-wide fault source."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def disarm() -> None:
    """Remove the active injector (no-op when none is armed)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    return _ACTIVE


@contextmanager
def injected_faults(
    specs: Mapping[str, float | FaultSpec],
    seed: int = 0,
):
    """Arm faults for the duration of a ``with`` block.

    Restores whatever injector (or none) was armed before, so harness
    scopes nest safely.
    """
    previous = _ACTIVE
    injector = arm(FaultInjector(specs, seed=seed))
    try:
        yield injector
    finally:
        if previous is None:
            disarm()
        else:
            arm(previous)


def arm_from_env(environ: Mapping[str, str] | None = None) -> FaultInjector | None:
    """Arm faults from ``REPRO_FAULTS`` if set; return the injector.

    Format: comma-separated ``site=probability[:max_fires]`` entries,
    plus an optional ``seed=N`` entry, e.g.
    ``"seed=7,spice.dc=0.2,spice.awe=1.0:3"``.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_FAULTS", "").strip()
    if not raw:
        return None
    seed = 0
    specs: dict[str, FaultSpec] = {}
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if "=" not in entry:
            raise ApeError(
                "REPRO_FAULTS entries must be site=prob[:max_fires]",
                context={"entry": entry},
            )
        site, value = entry.split("=", 1)
        site = site.strip()
        if site == "seed":
            seed = int(value)
            continue
        max_fires: int | None = None
        chain: int | None = None
        try:
            if "@" in value:
                value, chain_raw = value.split("@", 1)
                chain = int(chain_raw)
            if ":" in value:
                value, fires_raw = value.split(":", 1)
                max_fires = int(fires_raw)
            specs[site] = FaultSpec(
                site, probability=float(value), max_fires=max_fires,
                chain=chain,
            )
        except ValueError as exc:
            raise ApeError(
                f"REPRO_FAULTS: bad entry for {site}: {exc}",
                context={"entry": entry},
            ) from exc
    return arm(FaultInjector(specs, seed=seed))


def check(site: str) -> None:
    """Raise the site's canonical exception when its fault fires."""
    injector = _ACTIVE
    if injector is not None and injector.fires_at(site):
        error = KNOWN_SITES.get(site, SimulationError)
        raise error(
            f"injected fault at {site}",
            context={"site": site, "injected": True},
        )


def fires(site: str) -> bool:
    """Boolean fault query for sites that degrade instead of raising."""
    injector = _ACTIVE
    return injector is not None and injector.fires_at(site)
