"""Write-ahead run journal: checkpoint a synthesis run, resume it later.

A journaled run owns a *run directory*:

``manifest.json``
    One JSON object identifying the run: a fingerprint of the sizing
    problem (technology, spec, topology, mode, seed, restarts,
    evaluation budget, ...), the derived per-chain seeds, and free-form
    metadata.  Resume refuses a directory whose fingerprint does not
    match the requested run.
``journal.jsonl``
    Append-only JSON lines, flushed and fsynced per record
    (write-ahead: a chain is only considered durable once its line is
    on disk).  Record kinds: ``chain-finished`` (the full serialized
    :class:`~repro.parallel.ChainOutcome`), supervision events
    (``worker-restart``, ``chain-retried``, ``chain-quarantined``,
    ``chain-hung``, ``chain-timeout``, ``interrupted``,
    ``chain-resumed``), and ``run-finished``.
``memo.json``
    Periodic snapshot of the shared :class:`~repro.parallel.EvalMemo`
    (atomically replaced), so a resumed run starts with a warm cache.

Because chain seeds are Weyl-derived from ``(master_seed, index)`` and
chain results are pure functions of their tasks, a resumed run —
journaled outcomes for finished chains plus fresh executions of the
rest — reproduces the uninterrupted run's best result bit-for-bit.
JSON floats round-trip exactly (``repr``-based shortest encoding), so
nothing is lost crossing the disk boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Iterator

from ..errors import ApeError

__all__ = ["RunJournal", "run_fingerprint"]


def run_fingerprint(*parts: object) -> str:
    """Stable identity of a run configuration.

    Built from ``repr`` of the parts (dataclass reprs are stable and
    value-based here) rather than pickle bytes, whose memo-reference
    layout can differ between processes.
    """
    blob = repr(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _diagnostic_to_jsonable(diagnostic: Any) -> dict:
    return {
        "subsystem": diagnostic.subsystem,
        "severity": diagnostic.severity,
        "message": diagnostic.message,
        "suggested_fix": diagnostic.suggested_fix,
        "context": _jsonable_context(diagnostic.context),
        "exception_chain": list(diagnostic.exception_chain),
    }


def _jsonable_context(context: dict) -> dict:
    """Context payloads may hold tuples/objects; coerce for JSON."""
    out = {}
    for key, value in context.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [
                v if isinstance(v, (str, int, float, bool)) or v is None
                else repr(v)
                for v in value
            ]
        else:
            out[key] = repr(value)
    return out


def _diagnostic_from_jsonable(payload: dict) -> Any:
    from .diagnostics import Diagnostic

    return Diagnostic(
        subsystem=payload["subsystem"],
        severity=payload["severity"],
        message=payload["message"],
        suggested_fix=payload.get("suggested_fix", ""),
        context=dict(payload.get("context", {})),
        exception_chain=tuple(payload.get("exception_chain", ())),
    )


def outcome_to_jsonable(outcome: Any) -> dict:
    """Serialize a ChainOutcome (sans memo snapshot) for the journal."""
    anneal = outcome.anneal
    return {
        "chain_index": outcome.chain_index,
        "seed": outcome.seed,
        "anneal": {
            "best_params": dict(anneal.best_params),
            "best_cost": anneal.best_cost,
            "best_metrics": (
                dict(anneal.best_metrics)
                if anneal.best_metrics is not None else None
            ),
            "evaluations": anneal.evaluations,
            "accepted": anneal.accepted,
            "history": list(anneal.history),
            "failed_evaluations": anneal.failed_evaluations,
            "degraded": anneal.degraded,
            "stop_reason": anneal.stop_reason,
            "wall_seconds": anneal.wall_seconds,
            "evals_per_second": anneal.evals_per_second,
            "surrogate_skips": anneal.surrogate_skips,
            "surrogate_refits": anneal.surrogate_refits,
        },
        "degraded_design": outcome.degraded_design,
        "ape_seconds": outcome.ape_seconds,
        "lint_rejections": outcome.lint_rejections,
        "retries": outcome.retries,
        "cache_hits": outcome.cache_hits,
        "cache_misses": outcome.cache_misses,
        "corner_evals": outcome.corner_evals,
        "screened_candidates": outcome.screened_candidates,
        "store_hits": outcome.store_hits,
        "surrogate_skips": outcome.surrogate_skips,
        "surrogate_refits": outcome.surrogate_refits,
        "diagnostics": [
            _diagnostic_to_jsonable(d) for d in outcome.diagnostics
        ],
    }


def outcome_from_jsonable(payload: dict) -> Any:
    """Rebuild a ChainOutcome journaled by :func:`outcome_to_jsonable`."""
    from ..parallel.executor import ChainOutcome
    from ..synthesis.annealing import AnnealResult

    anneal = payload["anneal"]
    return ChainOutcome(
        chain_index=payload["chain_index"],
        seed=payload["seed"],
        anneal=AnnealResult(
            best_params=dict(anneal["best_params"]),
            best_cost=anneal["best_cost"],
            best_metrics=(
                dict(anneal["best_metrics"])
                if anneal["best_metrics"] is not None else None
            ),
            evaluations=anneal["evaluations"],
            accepted=anneal["accepted"],
            history=list(anneal["history"]),
            failed_evaluations=anneal["failed_evaluations"],
            degraded=anneal["degraded"],
            stop_reason=anneal["stop_reason"],
            wall_seconds=anneal["wall_seconds"],
            evals_per_second=anneal["evals_per_second"],
            surrogate_skips=anneal.get("surrogate_skips", 0),
            surrogate_refits=anneal.get("surrogate_refits", 0),
        ),
        degraded_design=payload["degraded_design"],
        ape_seconds=payload["ape_seconds"],
        lint_rejections=payload["lint_rejections"],
        retries=payload["retries"],
        cache_hits=payload["cache_hits"],
        cache_misses=payload["cache_misses"],
        # .get(): journals written before corner/yield-aware synthesis
        # (or before the evaluation store) carry no robust/store
        # counters; default them to zero on replay.
        corner_evals=payload.get("corner_evals", 0),
        screened_candidates=payload.get("screened_candidates", 0),
        store_hits=payload.get("store_hits", 0),
        surrogate_skips=payload.get("surrogate_skips", 0),
        surrogate_refits=payload.get("surrogate_refits", 0),
        diagnostics=[
            _diagnostic_from_jsonable(d) for d in payload["diagnostics"]
        ],
        memo_snapshot=None,
    )


class RunJournal:
    """Filesystem-backed journal of one synthesis run."""

    SCHEMA = "repro-run-journal/1"
    MANIFEST = "manifest.json"
    JOURNAL = "journal.jsonl"
    MEMO = "memo.json"

    def __init__(self, run_dir: str | os.PathLike) -> None:
        self.run_dir = os.fspath(run_dir)

    # ------------------------------------------------------------- manifest

    def _path(self, name: str) -> str:
        return os.path.join(self.run_dir, name)

    def exists(self) -> bool:
        return os.path.isfile(self._path(self.MANIFEST))

    def initialize(self, manifest: dict) -> None:
        """Start a fresh run: write the manifest, truncate the journal."""
        os.makedirs(self.run_dir, exist_ok=True)
        payload = {"schema": self.SCHEMA, **manifest}
        self._atomic_write(self.MANIFEST, json.dumps(payload, indent=2))
        # Truncate any stale journal/memo so a reused directory cannot
        # leak chains from an unrelated earlier run.
        open(self._path(self.JOURNAL), "w", encoding="utf-8").close()
        memo_path = self._path(self.MEMO)
        if os.path.exists(memo_path):
            os.unlink(memo_path)

    def load_manifest(self) -> dict:
        try:
            with open(self._path(self.MANIFEST), encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError as exc:
            raise ApeError(
                f"no run journal at {self.run_dir!r} (missing manifest.json)",
                context={"run_dir": self.run_dir},
            ) from exc
        except json.JSONDecodeError as exc:
            raise ApeError(
                f"corrupt run manifest in {self.run_dir!r}: {exc}",
                context={"run_dir": self.run_dir},
            ) from exc

    # ------------------------------------------------------- sidecar files

    def write_sidecar(self, name: str, payload: dict) -> None:
        """Atomically write an auxiliary JSON document (e.g. CLI args)."""
        os.makedirs(self.run_dir, exist_ok=True)
        self._atomic_write(name, json.dumps(payload, indent=2))

    def load_sidecar(self, name: str) -> dict | None:
        try:
            with open(self._path(name), encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    # -------------------------------------------------------- journal lines

    def append(self, event: str, **payload: Any) -> None:
        """Write-ahead append: the line is fsynced before returning."""
        line = json.dumps({"event": event, **payload}, sort_keys=False)
        with open(self._path(self.JOURNAL), "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def events(self) -> Iterator[dict]:
        """Journal records in order; tolerates a torn final line."""
        try:
            handle = open(self._path(self.JOURNAL), encoding="utf-8")
        except FileNotFoundError:
            return
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves at most one torn tail
                    # line; everything before it is intact.
                    return

    def record_outcome(self, outcome: Any) -> None:
        self.append("chain-finished", outcome=outcome_to_jsonable(outcome))

    def load_outcomes(self) -> dict[int, Any]:
        """Finished chains by index (later duplicates win harmlessly)."""
        outcomes: dict[int, Any] = {}
        for record in self.events():
            if record.get("event") == "chain-finished":
                outcome = outcome_from_jsonable(record["outcome"])
                outcomes[outcome.chain_index] = outcome
        return outcomes

    # ---------------------------------------------------------------- memo

    def snapshot_memo(self, memo: Any) -> None:
        """Atomically replace the memo snapshot with ``memo``'s state."""
        snapshot = memo.export()
        payload = {
            "quantum": snapshot["quantum"],
            "capacity": snapshot.get("capacity"),
            "generation": snapshot.get("generation"),
            "hits": snapshot["hits"],
            "misses": snapshot["misses"],
            "stores": snapshot["stores"],
            "evictions": snapshot.get("evictions", 0),
            "store_hits": snapshot.get("store_hits", 0),
            "entries": [
                [[list(pair) for pair in key], cost, metrics]
                for key, (cost, metrics) in snapshot["data"].items()
            ],
        }
        self._atomic_write(self.MEMO, json.dumps(payload))

    def load_memo(self) -> Any | None:
        """The journaled memo, or ``None`` when absent/corrupt."""
        from ..parallel.memo import EvalMemo

        try:
            with open(self._path(self.MEMO), encoding="utf-8") as handle:
                payload = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        memo = EvalMemo(payload["quantum"], capacity=payload.get("capacity"))
        snapshot = {
            "quantum": payload["quantum"],
            "capacity": payload.get("capacity"),
            "generation": payload.get("generation"),
            "hits": payload["hits"],
            "misses": payload["misses"],
            "stores": payload["stores"],
            "evictions": payload.get("evictions", 0),
            "store_hits": payload.get("store_hits", 0),
            "data": {
                tuple((name, q) for name, q in key): (
                    cost,
                    dict(metrics) if metrics is not None else None,
                )
                for key, cost, metrics in payload["entries"]
            },
        }
        memo.merge(snapshot)
        return memo

    # -------------------------------------------------------------- helpers

    def _atomic_write(self, name: str, text: str) -> None:
        path = self._path(name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
