"""Parent-side supervision of pooled synthesis workers.

A long multi-chain synthesis run must survive the three ways a worker
process dies in practice: it is killed (OOM killer, operator, injected
``worker.kill`` fault), it hangs (a pathological DC solve that never
converges, injected ``worker.hang``), or the whole run is interrupted
(Ctrl-C, SIGTERM from a scheduler).  This module holds the generic
supervision machinery the parallel executor builds its recovery loop
around:

* :class:`SupervisorConfig` — deadlines, heartbeat staleness, retry
  bounds and the poison-task quarantine policy;
* :class:`SupervisionEvent` / :class:`SupervisionReport` — the
  structured record of everything the supervisor did (worker restarts,
  chain retries, quarantines, resume skips, interrupts), surfaced as
  Diagnostics and by ``repro diagnostics``;
* :class:`PoolManager` — owns the process pool and guarantees teardown
  (shutdown + worker kill) on *every* exit path, including exceptions
  raised past a hung worker that a plain ``with ProcessPoolExecutor``
  would wait on forever;
* :func:`interrupt_guard` — scoped SIGINT/SIGTERM capture so a run
  drains in-flight chains, journals state and returns a best-so-far
  partial result instead of dying with nothing.

Everything here is task-agnostic: the executor supplies the pool
factory and the work items.  No chain ever produces a *different*
result because it was supervised — recovery re-runs lost chains, whose
results are pure functions of their tasks.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "SupervisorConfig",
    "SupervisionEvent",
    "SupervisionReport",
    "PoolManager",
    "interrupt_guard",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy for one pooled run."""

    #: Resubmissions a chain may consume after its worker was lost
    #: (killed, hung, or collateral of a pool collapse) before it is
    #: quarantined as a poison task.
    max_chain_retries: int = 2
    #: Hard wall-clock deadline for one chain attempt; ``None`` trusts
    #: the chains' own budgets.
    chain_timeout_seconds: float | None = None
    #: A running chain whose last heartbeat (one per candidate
    #: evaluation) is older than this is declared hung and its worker
    #: killed; ``None`` disables hang detection.
    heartbeat_timeout_seconds: float | None = None
    #: Cadence of the parent's watchdog loop.
    poll_interval_seconds: float = 0.05
    #: Retried chains drop ``worker.*`` fault specs, modelling worker
    #: loss as a transient: the replayed chain completes and is
    #: bit-for-bit the chain a fault-free run would have produced.
    #: ``False`` keeps the specs armed (how tests build poison tasks).
    strip_worker_faults_on_retry: bool = True
    #: Install SIGINT/SIGTERM handlers for graceful drain (main thread
    #: only; elsewhere the flag simply never trips).
    install_signal_handlers: bool = True
    #: Journal the shared memo every N completed chains (0 disables).
    memo_snapshot_every: int = 1
    #: Test hook: behave as if SIGINT arrived once this many chains
    #: have completed — a deterministic interrupt for resume tests.
    interrupt_after: int | None = None

    def __post_init__(self) -> None:
        if self.max_chain_retries < 0:
            raise ValueError(
                f"max_chain_retries must be >= 0, got {self.max_chain_retries}"
            )
        for name in ("chain_timeout_seconds", "heartbeat_timeout_seconds"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.poll_interval_seconds <= 0:
            raise ValueError(
                "poll_interval_seconds must be positive, "
                f"got {self.poll_interval_seconds}"
            )


@dataclass
class SupervisionEvent:
    """One thing the supervisor did or observed."""

    #: ``worker-restart``, ``chain-retried``, ``chain-quarantined``,
    #: ``chain-hung``, ``chain-timeout``, ``chain-resumed``,
    #: ``interrupted``.
    kind: str
    chain_index: int | None = None
    detail: str = ""


@dataclass
class SupervisionReport:
    """Everything the supervisor did during one run."""

    events: list[SupervisionEvent] = field(default_factory=list)
    #: Pool rebuilds after a worker was killed or declared hung.
    worker_restarts: int = 0
    #: Chain resubmissions (a chain may be retried more than once).
    chain_retries: int = 0
    #: Chains abandoned after exhausting their retry budget.
    quarantined: list[int] = field(default_factory=list)
    #: Chains skipped because the journal already held their outcome.
    resumed: list[int] = field(default_factory=list)
    #: True when SIGINT/SIGTERM (or the synthetic test interrupt)
    #: stopped the run before every chain finished.
    interrupted: bool = False

    def record(
        self, kind: str, chain_index: int | None = None, detail: str = ""
    ) -> SupervisionEvent:
        event = SupervisionEvent(kind, chain_index, detail)
        self.events.append(event)
        return event

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def merge(self, other: "SupervisionReport") -> None:
        self.events.extend(other.events)
        self.worker_restarts += other.worker_restarts
        self.chain_retries += other.chain_retries
        self.quarantined.extend(other.quarantined)
        self.resumed.extend(other.resumed)
        self.interrupted = self.interrupted or other.interrupted


class PoolManager:
    """Owns a process pool; guarantees teardown on every exit path.

    ``concurrent.futures``' own context manager waits for running
    futures on exit — which wedges forever behind a hung worker.  This
    manager always exits promptly: pending futures are cancelled,
    worker processes are killed outright, and the pool can be rebuilt
    mid-run after a :class:`BrokenProcessPool` collapse.
    """

    def __init__(self, factory: Callable[[], object]) -> None:
        self._factory = factory
        self.pool: object | None = None
        self.rebuilds = 0

    def __enter__(self) -> "PoolManager":
        self.pool = self._factory()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.teardown()

    def rebuild(self) -> object:
        """Tear the (broken) pool down and start a fresh one."""
        self.teardown()
        self.pool = self._factory()
        self.rebuilds += 1
        return self.pool

    def kill_workers(self) -> None:
        """SIGKILL every live worker (hung-chain recovery).

        The executor observes the deaths as a broken pool, which routes
        recovery through the same resubmission path as a crashed
        worker.
        """
        pool = self.pool
        if pool is None:
            return
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.kill()
            except (OSError, ValueError):  # already dead / closed
                pass

    def teardown(self) -> None:
        """Shut down without waiting on workers, then kill stragglers."""
        pool = self.pool
        if pool is None:
            return
        self.pool = None
        # Snapshot the worker handles first: shutdown() clears the
        # pool's _processes dict.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except (OSError, RuntimeError):  # pragma: no cover - pool already broken
            pass
        for process in processes:
            try:
                process.kill()
            except (OSError, ValueError):
                pass
        for process in processes:
            try:
                process.join(timeout=1.0)
            except (OSError, ValueError, AssertionError):
                pass


class _StopFlag:
    """Signal-count flag shared between a handler and the poll loop."""

    def __init__(self) -> None:
        self.signals = 0

    def __call__(self) -> bool:
        return self.signals > 0

    @property
    def hard(self) -> bool:
        """Two signals mean "stop draining, abandon in-flight work"."""
        return self.signals > 1


@contextmanager
def interrupt_guard(enabled: bool = True) -> Iterator[_StopFlag]:
    """Capture SIGINT/SIGTERM into a flag for the duration of a run.

    The first signal requests a graceful drain (finish in-flight
    chains, journal, return partial results); the second marks the
    flag *hard* so the loop abandons in-flight work too.  Handlers are
    only installed from the main thread — elsewhere the flag is inert
    and signals keep their previous behaviour.
    """
    flag = _StopFlag()
    if (
        not enabled
        or threading.current_thread() is not threading.main_thread()
    ):
        yield flag
        return

    def _handler(signum: int, frame: object) -> None:
        flag.signals += 1

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield flag
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
