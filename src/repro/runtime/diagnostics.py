"""Structured diagnostics: what went wrong, where, and what to do.

Production sizing flows treat a failed simulation or an infeasible
analytical estimate as a *first-class outcome*: the run keeps going,
and the failure is recorded as a :class:`Diagnostic` carrying the
subsystem, a severity, the rendered exception chain and a suggested
fix.  A :class:`DiagnosticLog` accumulates records per run; every
record is mirrored into a process-wide session log so the CLI's
``repro diagnostics`` command can render everything that happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticLog",
    "global_log",
]

#: Recognized severity levels, mildest first.
Severity = ("info", "warning", "error")


def _exception_chain(exc: BaseException) -> tuple[str, ...]:
    """Render ``exc`` and its ``__cause__``/``__context__`` chain."""
    chain: list[str] = []
    seen: set[int] = set()
    current: BaseException | None = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return tuple(chain)


@dataclass
class Diagnostic:
    """One structured failure/degradation record."""

    #: Which layer produced the record (``spice.dc``, ``estimator.opamp``,
    #: ``synthesis.evaluate``, ...).
    subsystem: str
    #: One of :data:`Severity`.
    severity: str
    #: Human-readable description of what happened.
    message: str
    #: What the user can do about it (may be empty).
    suggested_fix: str = ""
    #: Structured payload — component, parameter, value, seed, ...
    context: dict = field(default_factory=dict)
    #: Rendered ``type: message`` lines of the originating exception chain.
    exception_chain: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in Severity:
            raise ValueError(
                f"severity must be one of {Severity}, got {self.severity!r}"
            )

    @classmethod
    def from_exception(
        cls,
        subsystem: str,
        exc: BaseException,
        *,
        severity: str = "error",
        suggested_fix: str = "",
        context: dict | None = None,
    ) -> "Diagnostic":
        """Build a record from a caught exception, preserving its chain."""
        merged = dict(getattr(exc, "context", {}) or {})
        merged.update(context or {})
        return cls(
            subsystem=subsystem,
            severity=severity,
            message=str(exc) or type(exc).__name__,
            suggested_fix=suggested_fix,
            context=merged,
            exception_chain=_exception_chain(exc),
        )

    def render(self) -> str:
        """One- or multi-line human-readable rendering."""
        lines = [f"[{self.severity}] {self.subsystem}: {self.message}"]
        if self.context:
            pairs = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
            lines.append(f"    context: {pairs}")
        for entry in self.exception_chain[1:]:
            lines.append(f"    caused by: {entry}")
        if self.suggested_fix:
            lines.append(f"    fix: {self.suggested_fix}")
        return "\n".join(lines)


class DiagnosticLog:
    """An append-only collection of :class:`Diagnostic` records.

    Records are also mirrored into the process-wide session log (see
    :func:`global_log`) unless this *is* the session log, so one-shot
    tools can render everything accumulated across subsystems.
    """

    def __init__(self, mirror: bool = True) -> None:
        self.records: list[Diagnostic] = []
        #: Parallel chain logs set ``mirror=False``: their records are
        #: replayed into the caller's log after the chain returns, and
        #: mirroring them at record time too would double-count them in
        #: the session log.
        self._mirror = mirror

    def record(self, diagnostic: Diagnostic) -> Diagnostic:
        self.records.append(diagnostic)
        if self._mirror:
            session = global_log()
            if self is not session:
                session.records.append(diagnostic)
        return diagnostic

    def record_exception(
        self,
        subsystem: str,
        exc: BaseException,
        *,
        severity: str = "error",
        suggested_fix: str = "",
        context: dict | None = None,
    ) -> Diagnostic:
        return self.record(
            Diagnostic.from_exception(
                subsystem,
                exc,
                severity=severity,
                suggested_fix=suggested_fix,
                context=context,
            )
        )

    def clear(self) -> None:
        self.records.clear()

    def worst_severity(self) -> str | None:
        if not self.records:
            return None
        return max(self.records, key=lambda d: Severity.index(d.severity)).severity

    def render(self) -> str:
        if not self.records:
            return "no diagnostics recorded"
        return "\n".join(d.render() for d in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)


_SESSION_LOG = DiagnosticLog()


def global_log() -> DiagnosticLog:
    """The process-wide session log every :class:`DiagnosticLog` mirrors to."""
    return _SESSION_LOG
