"""Process-wide performance counters for the synthesis session.

Mirrors the role of :func:`~repro.runtime.diagnostics.global_log` for
throughput: every synthesis run records its evaluation count, wall
time and memo-cache traffic here, and ``repro diagnostics`` renders
the totals so a long table run ends with one honest throughput line.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SessionStats", "global_stats"]


@dataclass
class SessionStats:
    """Cumulative evaluation/throughput counters for one process."""

    runs: int = 0
    evaluations: int = 0
    #: Extra per-corner / per-mismatch-sample evaluations performed by
    #: variation-robust runs (beyond the nominal candidate evaluations
    #: counted in ``evaluations``).
    corner_evals: int = 0
    eval_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    worker_restarts: int = 0
    chains_quarantined: int = 0
    chains_resumed: int = 0
    runs_interrupted: int = 0
    #: Persistent-store traffic: lookups served from disk and new rows
    #: flushed back by store-backed runs.
    store_hits: int = 0
    store_writes: int = 0
    #: Surrogate screening: proposals discarded un-evaluated and model
    #: (re)fits across all chains of all runs.
    surrogate_skips: int = 0
    surrogate_refits: int = 0

    def record_run(
        self,
        *,
        evaluations: int,
        seconds: float,
        corner_evals: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        cache_evictions: int = 0,
        worker_restarts: int = 0,
        chains_quarantined: int = 0,
        chains_resumed: int = 0,
        interrupted: bool = False,
        store_hits: int = 0,
        store_writes: int = 0,
        surrogate_skips: int = 0,
        surrogate_refits: int = 0,
    ) -> None:
        self.runs += 1
        self.evaluations += evaluations
        self.corner_evals += corner_evals
        self.eval_seconds += seconds
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        self.cache_evictions += cache_evictions
        self.worker_restarts += worker_restarts
        self.chains_quarantined += chains_quarantined
        self.chains_resumed += chains_resumed
        self.runs_interrupted += 1 if interrupted else 0
        self.store_hits += store_hits
        self.store_writes += store_writes
        self.surrogate_skips += surrogate_skips
        self.surrogate_refits += surrogate_refits

    @property
    def evals_per_second(self) -> float:
        if self.eval_seconds <= 0:
            return 0.0
        return self.evaluations / self.eval_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def clear(self) -> None:
        self.runs = 0
        self.evaluations = 0
        self.corner_evals = 0
        self.eval_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.worker_restarts = 0
        self.chains_quarantined = 0
        self.chains_resumed = 0
        self.runs_interrupted = 0
        self.store_hits = 0
        self.store_writes = 0
        self.surrogate_skips = 0
        self.surrogate_refits = 0

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of every counter plus derived rates."""
        return {
            "runs": self.runs,
            "evaluations": self.evaluations,
            "corner_evals": self.corner_evals,
            "eval_seconds": self.eval_seconds,
            "evals_per_second": self.evals_per_second,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate,
            "worker_restarts": self.worker_restarts,
            "chains_quarantined": self.chains_quarantined,
            "chains_resumed": self.chains_resumed,
            "runs_interrupted": self.runs_interrupted,
            "store_hits": self.store_hits,
            "store_writes": self.store_writes,
            "surrogate_skips": self.surrogate_skips,
            "surrogate_refits": self.surrogate_refits,
        }

    def render(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"synthesis runs: {self.runs}",
            f"candidate evaluations: {self.evaluations} "
            f"({self.evals_per_second:.1f} evals/s over "
            f"{self.eval_seconds:.2f}s)",
        ]
        if self.corner_evals:
            lines.append(
                f"corner/mismatch evaluations: {self.corner_evals}"
            )
        if self.cache_hits or self.cache_misses:
            cache_line = (
                f"evaluation cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"(hit rate {self.cache_hit_rate:.1%})"
            )
            if self.cache_evictions:
                cache_line += f", {self.cache_evictions} LRU evictions"
            lines.append(cache_line)
        else:
            lines.append("evaluation cache: unused")
        if self.store_hits or self.store_writes:
            lines.append(
                f"persistent store: {self.store_hits} hits / "
                f"{self.store_writes} new rows written"
            )
        if self.surrogate_skips or self.surrogate_refits:
            lines.append(
                f"surrogate screen: {self.surrogate_skips} proposals "
                f"skipped, {self.surrogate_refits} model refits"
            )
        if (
            self.worker_restarts
            or self.chains_quarantined
            or self.chains_resumed
            or self.runs_interrupted
        ):
            lines.append(
                f"supervision: {self.worker_restarts} worker restarts, "
                f"{self.chains_quarantined} chains quarantined, "
                f"{self.chains_resumed} chains resumed from journal, "
                f"{self.runs_interrupted} runs interrupted"
            )
        return "\n".join(lines)


_SESSION_STATS = SessionStats()


def global_stats() -> SessionStats:
    """The process-wide counters every synthesis run reports into."""
    return _SESSION_STATS
