"""Process-wide performance counters for the synthesis session.

Mirrors the role of :func:`~repro.runtime.diagnostics.global_log` for
throughput: every synthesis run records its evaluation count, wall
time and memo-cache traffic here, and ``repro diagnostics`` renders
the totals so a long table run ends with one honest throughput line.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SessionStats", "global_stats"]


@dataclass
class SessionStats:
    """Cumulative evaluation/throughput counters for one process."""

    runs: int = 0
    evaluations: int = 0
    #: Extra per-corner / per-mismatch-sample evaluations performed by
    #: variation-robust runs (beyond the nominal candidate evaluations
    #: counted in ``evaluations``).
    corner_evals: int = 0
    eval_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    worker_restarts: int = 0
    chains_quarantined: int = 0
    chains_resumed: int = 0
    runs_interrupted: int = 0

    def record_run(
        self,
        *,
        evaluations: int,
        seconds: float,
        corner_evals: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
        cache_evictions: int = 0,
        worker_restarts: int = 0,
        chains_quarantined: int = 0,
        chains_resumed: int = 0,
        interrupted: bool = False,
    ) -> None:
        self.runs += 1
        self.evaluations += evaluations
        self.corner_evals += corner_evals
        self.eval_seconds += seconds
        self.cache_hits += cache_hits
        self.cache_misses += cache_misses
        self.cache_evictions += cache_evictions
        self.worker_restarts += worker_restarts
        self.chains_quarantined += chains_quarantined
        self.chains_resumed += chains_resumed
        self.runs_interrupted += 1 if interrupted else 0

    @property
    def evals_per_second(self) -> float:
        if self.eval_seconds <= 0:
            return 0.0
        return self.evaluations / self.eval_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def clear(self) -> None:
        self.runs = 0
        self.evaluations = 0
        self.corner_evals = 0
        self.eval_seconds = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.worker_restarts = 0
        self.chains_quarantined = 0
        self.chains_resumed = 0
        self.runs_interrupted = 0

    def render(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"synthesis runs: {self.runs}",
            f"candidate evaluations: {self.evaluations} "
            f"({self.evals_per_second:.1f} evals/s over "
            f"{self.eval_seconds:.2f}s)",
        ]
        if self.corner_evals:
            lines.append(
                f"corner/mismatch evaluations: {self.corner_evals}"
            )
        if self.cache_hits or self.cache_misses:
            cache_line = (
                f"evaluation cache: {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"(hit rate {self.cache_hit_rate:.1%})"
            )
            if self.cache_evictions:
                cache_line += f", {self.cache_evictions} LRU evictions"
            lines.append(cache_line)
        else:
            lines.append("evaluation cache: unused")
        if (
            self.worker_restarts
            or self.chains_quarantined
            or self.chains_resumed
            or self.runs_interrupted
        ):
            lines.append(
                f"supervision: {self.worker_restarts} worker restarts, "
                f"{self.chains_quarantined} chains quarantined, "
                f"{self.chains_resumed} chains resumed from journal, "
                f"{self.runs_interrupted} runs interrupted"
            )
        return "\n".join(lines)


_SESSION_STATS = SessionStats()


def global_stats() -> SessionStats:
    """The process-wide counters every synthesis run reports into."""
    return _SESSION_STATS
