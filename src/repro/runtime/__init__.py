"""Fault-tolerant evaluation runtime.

The robustness substrate under the solver -> estimator -> synthesis
stack.  Four pieces, each usable on its own:

* :class:`RetryPolicy` — bounded, deterministic retries with
  exponentially growing jitter on initial guesses and the DC solver's
  gmin ladder (:mod:`repro.runtime.retry`);
* :class:`EvalBudget` — per-run evaluation / failure / wall-clock
  budgets polled by the annealer so runs degrade to "best point so
  far + diagnostics" instead of hanging (:mod:`repro.runtime.budget`);
* :class:`Diagnostic` / :class:`DiagnosticLog` — structured records of
  every failure or degradation, mirrored to a process-wide session log
  (:mod:`repro.runtime.diagnostics`);
* :mod:`repro.runtime.faults` — a deterministic, seedable
  fault-injection harness proving that every recovery path fires;
* :class:`SessionStats` — process-wide throughput and cache counters
  rendered by ``repro diagnostics`` (:mod:`repro.runtime.stats`);
* :mod:`repro.runtime.supervisor` — parent-side supervision of pooled
  workers: crash/hang detection, bounded chain retries, quarantine,
  graceful interrupt drain (:class:`SupervisorConfig`,
  :class:`SupervisionReport`, :class:`PoolManager`);
* :class:`RunJournal` — write-ahead run checkpointing powering
  ``repro synthesize --resume`` (:mod:`repro.runtime.journal`).

See ``docs/ROBUSTNESS.md`` for the model and usage.
"""

from .budget import EvalBudget
from .diagnostics import Diagnostic, DiagnosticLog, global_log
from .journal import RunJournal, run_fingerprint
from .retry import RetryPolicy
from .stats import SessionStats, global_stats
from .supervisor import (
    PoolManager,
    SupervisionEvent,
    SupervisionReport,
    SupervisorConfig,
    interrupt_guard,
)
from . import faults

__all__ = [
    "EvalBudget",
    "Diagnostic",
    "DiagnosticLog",
    "global_log",
    "PoolManager",
    "RetryPolicy",
    "RunJournal",
    "run_fingerprint",
    "SessionStats",
    "SupervisionEvent",
    "SupervisionReport",
    "SupervisorConfig",
    "global_stats",
    "interrupt_guard",
    "faults",
]
