"""Bounded, deterministic retry policies for failed evaluations.

A :class:`RetryPolicy` owns three knobs:

* ``max_attempts`` — total solve attempts (first try included),
* ``jitter`` — the relative magnitude of the deterministic
  perturbation applied to the initial guess on the first retry,
* ``backoff`` — exponential growth factor of that perturbation (and of
  the gmin-ladder relaxation in the DC solver) on every further retry.

Retries on a CPU-bound local solver gain nothing from sleeping, so the
"backoff" here widens the *search*, not the wall clock: each retry
starts from a more strongly perturbed guess and walks a more forgiving
gmin ladder.  All perturbations are derived from ``(seed, attempt)``
only, so a retried run is bit-for-bit reproducible and — crucially — a
run in which no retry fires is identical to one executed without any
policy installed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["RetryPolicy"]


@dataclass
class RetryPolicy:
    """Bounded deterministic retries with exponentially growing jitter."""

    #: Total attempts, first try included (1 disables retries).
    max_attempts: int = 3
    #: Perturbation scale on the first retry (volts for DC guesses).
    jitter: float = 0.05
    #: Growth factor applied to ``jitter`` per further retry.
    backoff: float = 4.0
    #: Seed for the deterministic perturbation streams.
    seed: int = 0
    #: Retries actually consumed (across all calls using this policy).
    total_retries: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.jitter < 0 or self.backoff < 1:
            raise ValueError(
                f"need jitter >= 0 and backoff >= 1, got "
                f"jitter={self.jitter}, backoff={self.backoff}"
            )

    def scale(self, attempt: int) -> float:
        """Perturbation magnitude for retry ``attempt`` (1 = first retry)."""
        return self.jitter * self.backoff ** (attempt - 1)

    def rng(self, attempt: int) -> random.Random:
        """A fresh deterministic stream for retry ``attempt``.

        Independent of call order and of how many other sites share the
        policy, so concurrent users cannot perturb each other's draws.
        """
        return random.Random(self.seed * 1_000_003 + attempt)

    def note_retry(self) -> None:
        self.total_retries += 1

    def perturb(self, values: list[float], attempt: int) -> list[float]:
        """Additively jitter a vector of initial-guess values."""
        rng = self.rng(attempt)
        scale = self.scale(attempt)
        return [v + rng.gauss(0.0, scale) for v in values]
