"""Evaluation and wall-clock budgets for long-running searches.

An :class:`EvalBudget` is shared between a run driver (the synthesis
engine) and its inner loop (the annealer): every candidate evaluation
is charged against it, and the loop polls :meth:`exhausted_reason`
between moves.  When any limit trips, the search stops and returns the
best point found so far, flagged ``degraded`` — it never hangs and
never dies with a half-finished run.

Per-evaluation timing is *soft*: a pure-Python evaluation cannot be
preempted portably, so an evaluation that overruns ``per_eval_seconds``
is completed, counted in ``slow_evaluations`` and reported via
diagnostics rather than aborted mid-flight.

All timing uses ``time.monotonic`` (the default ``clock``), never the
wall clock: an NTP step or DST change mid-run must not fire a deadline
early or starve it forever.  The engine's cross-process chain deadline
(``ChainTask.deadline_epoch``) is an absolute monotonic instant for the
same reason — Linux's ``CLOCK_MONOTONIC`` is system-wide per boot, so
fork-started pool workers share the parent's timebase.  Persisted
service-layer timestamps (job leases, retry backoff gates) are the one
deliberate exception: they must survive a reboot, so they stay in epoch
seconds (see :mod:`repro.service.queue`).
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["EvalBudget"]


class EvalBudget:
    """Caps on evaluations, failures and wall-clock time for one run."""

    def __init__(
        self,
        max_evaluations: int | None = None,
        *,
        deadline_seconds: float | None = None,
        max_failures: int | None = None,
        per_eval_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        for name, value in (
            ("max_evaluations", max_evaluations),
            ("deadline_seconds", deadline_seconds),
            ("max_failures", max_failures),
            ("per_eval_seconds", per_eval_seconds),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        self.max_evaluations = max_evaluations
        self.deadline_seconds = deadline_seconds
        self.max_failures = max_failures
        self.per_eval_seconds = per_eval_seconds
        self._clock = clock
        self._t0: float | None = None
        self.evaluations = 0
        self.failures = 0
        self.slow_evaluations = 0
        #: Extra per-corner / per-mismatch-sample evaluations charged by
        #: variation-robust runs.  Informational: robust fan-out rides
        #: inside a candidate evaluation, so only the *candidate* counts
        #: against ``max_evaluations`` — but the wall-clock deadline
        #: naturally covers the corner work, and this counter keeps the
        #: budget's accounting honest about where the time went.
        self.corner_evaluations = 0

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "EvalBudget":
        """Arm the deadline clock (idempotent)."""
        if self._t0 is None:
            self._t0 = self._clock()
        return self

    def elapsed(self) -> float:
        if self._t0 is None:
            return 0.0
        return self._clock() - self._t0

    # ----------------------------------------------------------- accounting

    def consume(self, *, failed: bool = False, seconds: float = 0.0) -> None:
        """Charge one completed evaluation against the budget."""
        self.start()
        self.evaluations += 1
        if failed:
            self.failures += 1
        if self.per_eval_seconds is not None and seconds > self.per_eval_seconds:
            self.slow_evaluations += 1

    # ----------------------------------------------------------- exhaustion

    def exhausted_reason(self) -> str | None:
        """Why the run must stop now, or ``None`` to keep going."""
        if (
            self.max_evaluations is not None
            and self.evaluations >= self.max_evaluations
        ):
            return "evaluation budget exhausted"
        if self.max_failures is not None and self.failures >= self.max_failures:
            return "failure budget exhausted"
        if (
            self.deadline_seconds is not None
            and self._t0 is not None
            and self.elapsed() >= self.deadline_seconds
        ):
            return "deadline exceeded"
        return None

    def exhausted(self) -> bool:
        return self.exhausted_reason() is not None

    def remaining_evaluations(self) -> int | None:
        if self.max_evaluations is None:
            return None
        return max(self.max_evaluations - self.evaluations, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EvalBudget(evaluations={self.evaluations}"
            f"/{self.max_evaluations}, failures={self.failures}"
            f"/{self.max_failures}, elapsed={self.elapsed():.2f}s"
            f"/{self.deadline_seconds})"
        )
