"""Device level: MOSFET models and analytical sizing (APE level 1).

A :class:`MosDevice` evaluates the SPICE Level-1/2/3 large-signal and
small-signal equations (paper Eqs. 1-4) for a transistor of a given
geometry; the sizing functions invert those equations — given a target
(gm, Id) or (Id, Vov) pair they produce a :class:`SizedMos` "object which
contains the size and performance parameters" (paper §4.1).  Passive
elements (poly resistors and capacitors) round out the level.
"""

from .mosfet import (
    MosDevice,
    OperatingPoint,
    Region,
    SmallSignal,
)
from .sizing import (
    SizedMos,
    size_for_current_density,
    size_for_gm_id,
    size_for_id_vov,
)
from .passives import Capacitor, Resistor

__all__ = [
    "MosDevice",
    "OperatingPoint",
    "Region",
    "SmallSignal",
    "SizedMos",
    "size_for_gm_id",
    "size_for_id_vov",
    "size_for_current_density",
    "Resistor",
    "Capacitor",
]
