"""Passive elements: poly resistors and poly-poly capacitors.

APE level 4 modules (filters, S&H, integrators) contain sized passives;
their layout area counts toward the module's gate-area budget exactly as
transistor gates do, using the technology's sheet resistance and
capacitor density.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SizingError
from ..technology import Technology

__all__ = ["Resistor", "Capacitor"]

#: Default drawn width for poly resistors [m].
DEFAULT_RES_WIDTH = 2e-6


@dataclass(frozen=True)
class Resistor:
    """A poly resistor with its layout-area estimate."""

    value: float
    area: float

    @classmethod
    def design(
        cls, tech: Technology, value: float, width: float = DEFAULT_RES_WIDTH
    ) -> "Resistor":
        """Size a poly resistor of ``value`` ohms in technology ``tech``."""
        if value <= 0:
            raise SizingError(f"resistance must be positive, got {value}")
        if width <= 0:
            raise SizingError(f"resistor width must be positive, got {width}")
        return cls(value=value, area=tech.resistor_area(value, width))


@dataclass(frozen=True)
class Capacitor:
    """A poly-poly capacitor with its layout-area estimate."""

    value: float
    area: float

    @classmethod
    def design(cls, tech: Technology, value: float) -> "Capacitor":
        """Size a poly-poly capacitor of ``value`` farads."""
        if value < 0:
            raise SizingError(f"capacitance must be non-negative, got {value}")
        return cls(value=value, area=tech.capacitor_area(value))
