"""Analytical transistor sizing (paper §4.1).

"The transistor sizing process consists in solving these symbolic
equations such that the constraints are met.  For example, if a
transistor is specified by a given transconductance gm and a drain
current, APE estimates the transistor size, the output drain conductance
and the parasite capacitances."

The inversions implemented here:

* ``(gm, Id)``  ->  ``W/L = gm^2 / (2 KP Id)``, ``Vov = 2 Id / gm``
* ``(Id, Vov)`` ->  ``W/L = 2 Id / (KP Vov^2)``
* ``(Id, J)``   ->  ``W = Id / J`` at a chosen L (current-density rule)

After geometry is clamped to the technology's layout rules, the actual
operating point is re-derived from the final geometry so the returned
:class:`SizedMos` is always self-consistent even when a clamp bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SizingError
from ..technology import MosModelParams, Technology
from .mosfet import MosDevice, OperatingPoint, SmallSignal

__all__ = [
    "SizedMos",
    "size_for_gm_id",
    "size_for_id_vov",
    "size_for_current_density",
]

#: Below this overdrive [V] the square-law inversion is unreliable.
MIN_OVERDRIVE = 0.05
#: Default drawn-L multiple of the process minimum for analog devices
#: (longer than digital minimum for better matching and output resistance).
ANALOG_LENGTH_FACTOR = 2.0
#: Layout grid for drawn dimensions [m].
GRID = 0.05e-6


@dataclass(frozen=True)
class SizedMos:
    """A sized transistor with its bias point and small-signal estimate.

    This is the paper's level-1 "object which contains the size and
    performance parameters"; higher levels of the hierarchy compose
    these objects.
    """

    device: MosDevice
    op: OperatingPoint
    ss: SmallSignal

    @property
    def w(self) -> float:
        return self.device.w

    @property
    def l(self) -> float:
        return self.device.l

    @property
    def gate_area(self) -> float:
        """Drawn gate area [m^2]."""
        return self.device.gate_area

    @property
    def gm(self) -> float:
        return self.ss.gm

    @property
    def gds(self) -> float:
        return self.ss.gds

    @property
    def ids(self) -> float:
        return self.op.ids

    @property
    def vov(self) -> float:
        """Achieved overdrive at the bias point [V]."""
        return self.device.overdrive(self.op.vgs, self.op.vsb)

    def scaled(self, ratio: float, *, w_min: float | None = None) -> "SizedMos":
        """A copy with W (and Id) scaled by ``ratio`` — mirror branches.

        The bias voltages are unchanged; current and small-signal
        conductances scale linearly with W, which is exactly how a
        current-mirror output branch relates to its diode device.

        ``w_min`` keeps the result manufacturable: if the scaled width
        falls below it, both W and L grow by the same factor so W/L (and
        therefore the branch current) is preserved while the drawn
        geometry stays inside the technology's layout rules.
        """
        if ratio <= 0:
            raise SizingError(f"scale ratio must be positive, got {ratio}")
        w = self.device.w * ratio
        l = self.device.l
        if w_min is not None and w < w_min:
            l *= w_min / w
            w = w_min
        device = MosDevice(self.device.model, w, l)
        return _finish(device, self.op.vgs, self.op.vds, self.op.vsb)


def _snap(value: float, minimum: float, maximum: float) -> float:
    """Clamp to [minimum, maximum] and snap up to the layout grid."""
    clamped = min(max(value, minimum), maximum)
    return math.ceil(clamped / GRID - 1e-9) * GRID


def _finish(
    device: MosDevice, vgs: float, vds: float, vsb: float
) -> SizedMos:
    op = device.operating_point(vgs, vds, vsb)
    return SizedMos(device=device, op=op, ss=device.small_signal(vgs, vds, vsb))


def _solve_vgs_for_id(device: MosDevice, ids: float, vds: float, vsb: float) -> float:
    """Invert the drain-current equation for Vgs at fixed geometry.

    Bisection on the exact model (monotone in Vgs), so Level-2/3
    mobility degradation and velocity saturation are handled without
    approximation.
    """
    vth = device.threshold(vsb)
    lo = vth + 1e-6
    hi = vth + 20.0  # far beyond any realistic overdrive
    if device.ids(hi, vds, vsb) < ids:
        # Spec unreachable at this geometry; return the ceiling.
        return hi
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if device.ids(mid, vds, vsb) < ids:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _choose_length(tech: Technology, l: float | None) -> float:
    if l is None:
        return _snap(ANALOG_LENGTH_FACTOR * tech.l_min, tech.l_min, math.inf)
    if l < tech.l_min:
        raise SizingError(
            f"requested L={l:.3g} m is below the process minimum "
            f"{tech.l_min:.3g} m"
        )
    return _snap(l, tech.l_min, math.inf)


def _geometry_for_aspect(
    model: MosModelParams, tech: Technology, aspect: float, length: float
) -> MosDevice:
    """Realise an aspect ratio W/Leff within layout rules.

    If the width at the requested length would violate ``w_min``, the
    channel is *lengthened* to preserve the aspect ratio — silently
    changing the ratio would break every ratio-defined gain in the
    component library.  Very large aspects are built at ``w_max`` (the
    spec is then out of reach and the caller's re-derived operating
    point reflects that).
    """
    l_eff = length - 2.0 * model.ld
    width = aspect * l_eff
    if width < tech.w_min:
        width = tech.w_min
        l_eff = width / aspect
        length = _snap(l_eff + 2.0 * model.ld, tech.l_min, math.inf)
        l_eff = length - 2.0 * model.ld
    width = _snap(width, tech.w_min, tech.w_max)
    return MosDevice(model, width, length)


def size_for_gm_id(
    model: MosModelParams,
    tech: Technology,
    gm: float,
    ids: float,
    *,
    l: float | None = None,
    vds: float | None = None,
    vsb: float = 0.0,
) -> SizedMos:
    """Size a device to realise transconductance ``gm`` at current ``ids``.

    This is APE's canonical level-1 inversion: the square law gives
    ``W/L = gm^2 / (2 KP Id)`` and ``Vov = 2 Id / gm``.  The overdrive
    must stay above :data:`MIN_OVERDRIVE` (strong inversion) and below
    half the supply span; otherwise the spec is declared infeasible.
    """
    if gm <= 0 or ids <= 0:
        raise SizingError(f"gm and ids must be positive (gm={gm}, ids={ids})")
    vov = 2.0 * ids / gm
    vov_max = tech.supply_span / 2.0
    if vov < MIN_OVERDRIVE:
        raise SizingError(
            f"gm/Id spec implies Vov={vov * 1e3:.1f} mV < "
            f"{MIN_OVERDRIVE * 1e3:.0f} mV: weak inversion is outside the "
            "square-law model; lower gm or raise Id"
        )
    if vov > vov_max:
        raise SizingError(
            f"gm/Id spec implies Vov={vov:.2f} V > {vov_max:.2f} V "
            "(half the supply span); raise gm or lower Id"
        )
    length = _choose_length(tech, l)
    kp = model.kp_effective
    aspect = gm * gm / (2.0 * kp * ids)
    device = _geometry_for_aspect(model, tech, aspect, length)
    if vds is None:
        vds = vov + 0.2  # comfortably in saturation
    vgs = _solve_vgs_for_id(device, ids, vds, vsb)
    return _finish(device, vgs, vds, vsb)


def size_for_id_vov(
    model: MosModelParams,
    tech: Technology,
    ids: float,
    vov: float,
    *,
    l: float | None = None,
    vds: float | None = None,
    vsb: float = 0.0,
) -> SizedMos:
    """Size a device to carry ``ids`` at overdrive ``vov``.

    Used for bias devices and mirrors where the designer picks the
    overdrive (headroom) rather than a transconductance.
    """
    if ids <= 0:
        raise SizingError(f"ids must be positive, got {ids}")
    if not MIN_OVERDRIVE <= vov <= tech.supply_span:
        raise SizingError(
            f"overdrive {vov:.3f} V outside [{MIN_OVERDRIVE}, "
            f"{tech.supply_span:.2f}] V"
        )
    length = _choose_length(tech, l)
    kp = model.kp_effective
    aspect = 2.0 * ids / (kp * vov * vov)
    device = _geometry_for_aspect(model, tech, aspect, length)
    if vds is None:
        vds = vov + 0.2
    vgs = _solve_vgs_for_id(device, ids, vds, vsb)
    return _finish(device, vgs, vds, vsb)


def size_for_current_density(
    model: MosModelParams,
    tech: Technology,
    ids: float,
    density: float,
    *,
    l: float | None = None,
    vds: float | None = None,
    vsb: float = 0.0,
) -> SizedMos:
    """Size a device by current density ``density`` = Id / W [A/m].

    A common rule for output stages where W is set by current-handling
    rather than transconductance.
    """
    if ids <= 0 or density <= 0:
        raise SizingError("ids and density must be positive")
    length = _choose_length(tech, l)
    width = _snap(ids / density, tech.w_min, tech.w_max)
    device = MosDevice(model, width, length)
    vgs = _solve_vgs_for_id(device, ids, vds if vds is not None else 0.5, vsb)
    vov = device.overdrive(vgs, vsb)
    if vds is None:
        vds = vov + 0.2
        vgs = _solve_vgs_for_id(device, ids, vds, vsb)
    return _finish(device, vgs, vds, vsb)
