"""MOSFET large- and small-signal models (SPICE Levels 1-3).

The model equations follow the paper (§4.1, Eqs. 1-4) and the classic
SPICE formulations.  All terminal voltages passed to :class:`MosDevice`
are *polarity-normalized*: they are the NMOS-convention voltages for an
NMOS device and the magnitude-equivalent (sign-flipped) voltages for a
PMOS device, so ``vgs``, ``vds`` and currents are positive in normal
operation for both polarities.  The simulator layer performs the flip.

One notational note: the paper prints ``gm = sqrt(4 KP (W/L) |Ids|)``
(its Eq. 2).  With the SPICE convention ``Ids = (KP/2)(W/L)(Vgs-Vth)^2``
used in its Eq. 1 the correct coefficient is 2, not 4; we use the
self-consistent ``gm = sqrt(2 KP (W/L) Id)`` throughout.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import SizingError
from ..technology import MosModelParams

__all__ = ["Region", "OperatingPoint", "SmallSignal", "MosDevice"]


class Region(enum.Enum):
    """DC operating region of a MOSFET."""

    CUTOFF = "cutoff"
    TRIODE = "triode"
    SATURATION = "saturation"


@dataclass(frozen=True)
class OperatingPoint:
    """A DC bias point, polarity-normalized (all values NMOS-sign)."""

    vgs: float
    vds: float
    vsb: float
    ids: float
    region: Region

    @property
    def vov(self) -> float:
        """Overdrive voltage Vgs - Vth is not stored; see MosDevice."""
        raise AttributeError(
            "overdrive depends on the model; use MosDevice.overdrive()"
        )


@dataclass(frozen=True)
class SmallSignal:
    """Small-signal parameters at a bias point (paper Eqs. 2-4).

    ``gds`` is the paper's ``gd``; capacitances follow the Meyer model
    plus overlap and junction terms.  All values are >= 0.
    """

    gm: float
    gmb: float
    gds: float
    cgs: float
    cgd: float
    cgb: float
    cdb: float
    csb: float

    @property
    def ro(self) -> float:
        """Output resistance 1/gds [ohm] (inf when gds == 0)."""
        return math.inf if self.gds == 0 else 1.0 / self.gds

    @property
    def intrinsic_gain(self) -> float:
        """gm / gds, the single-device voltage-gain bound."""
        return math.inf if self.gds == 0 else self.gm / self.gds


@dataclass(frozen=True)
class MosDevice:
    """A MOSFET of fixed geometry bound to a model card.

    ``w`` and ``l`` are drawn dimensions in metres.  The effective
    channel length subtracts twice the lateral diffusion ``LD``.
    """

    model: MosModelParams
    w: float
    l: float

    def __post_init__(self) -> None:
        if self.w <= 0 or self.l <= 0:
            raise SizingError(
                f"device geometry must be positive (w={self.w}, l={self.l})"
            )
        if self.l_eff <= 0:
            raise SizingError(
                f"effective length <= 0: drawn l={self.l}, LD={self.model.ld}"
            )

    @property
    def l_eff(self) -> float:
        """Effective channel length L - 2*LD [m]."""
        return self.l - 2.0 * self.model.ld

    @property
    def aspect(self) -> float:
        """Effective aspect ratio W / Leff."""
        return self.w / self.l_eff

    @property
    def gate_area(self) -> float:
        """Drawn gate area W*L [m^2] — the area metric the paper reports."""
        return self.w * self.l

    # ------------------------------------------------------------------
    # Large signal
    # ------------------------------------------------------------------

    def threshold(self, vsb: float = 0.0) -> float:
        """Threshold magnitude with body effect at source-bulk ``vsb``."""
        return self.model.threshold(vsb)

    def overdrive(self, vgs: float, vsb: float = 0.0) -> float:
        """Overdrive Vgs - Vth(vsb); negative in cutoff."""
        return vgs - self.threshold(vsb)

    def _beta(self, vov: float) -> float:
        """Transconductance factor KP_eff * W/Leff with level corrections."""
        kp = self.model.kp_effective
        if self.model.level >= 2 and self.model.theta > 0 and vov > 0:
            # Level 2/3 vertical-field mobility degradation.
            kp = kp / (1.0 + self.model.theta * vov)
        return kp * self.aspect

    def _vdsat(self, vov: float) -> float:
        """Saturation voltage; velocity-saturation limited for Level 3."""
        if vov <= 0:
            return 0.0
        vmax = self.model.vmax
        if self.model.level == 3 and vmax > 0:
            # Classic Level-3 blend of pinch-off and velocity saturation.
            vc = vmax * self.l_eff / max(self.model.u0, 1e-12)
            return vov * vc / (vov + vc)
        return vov

    def _dvdsat(self, vov: float) -> float:
        """d(vdsat)/d(vov) — needed for the Level-3 gm."""
        if vov <= 0:
            return 0.0
        vmax = self.model.vmax
        if self.model.level == 3 and vmax > 0:
            vc = vmax * self.l_eff / max(self.model.u0, 1e-12)
            return (vc / (vov + vc)) ** 2
        return 1.0

    def region(self, vgs: float, vds: float, vsb: float = 0.0) -> Region:
        """Operating region for polarity-normalized bias voltages."""
        vov = self.overdrive(vgs, vsb)
        if vov <= 0:
            return Region.CUTOFF
        if vds < self._vdsat(vov):
            return Region.TRIODE
        return Region.SATURATION

    def ids(self, vgs: float, vds: float, vsb: float = 0.0) -> float:
        """Drain current [A] (paper Eq. 1 in saturation).

        ``vds`` must be >= 0 (the simulator swaps terminals for reverse
        operation before calling this).
        """
        vov = self.overdrive(vgs, vsb)
        if vov <= 0:
            return 0.0
        beta = self._beta(vov)
        lam = self.model.lambda_
        vdsat = self._vdsat(vov)
        if vds < vdsat:
            return beta * (vov - vds / 2.0) * vds * (1.0 + lam * vds)
        # Saturation current = the triode expression at vds = vdsat,
        # which keeps I(vds) continuous for the velocity-saturated
        # Level-3 case (vdsat < vov); for Level 1/2 (vdsat = vov) this
        # is the familiar 0.5*beta*vov^2.
        return beta * (vov - vdsat / 2.0) * vdsat * (1.0 + lam * vds)

    def operating_point(
        self, vgs: float, vds: float, vsb: float = 0.0
    ) -> OperatingPoint:
        """Evaluate the bias point for the given voltages."""
        return OperatingPoint(
            vgs=vgs,
            vds=vds,
            vsb=vsb,
            ids=self.ids(vgs, vds, vsb),
            region=self.region(vgs, vds, vsb),
        )

    # ------------------------------------------------------------------
    # Small signal
    # ------------------------------------------------------------------

    def gm(self, vgs: float, vds: float, vsb: float = 0.0) -> float:
        """Gate transconductance dIds/dVgs [S] (paper Eq. 2)."""
        vov = self.overdrive(vgs, vsb)
        if vov <= 0:
            return 0.0
        beta = self._beta(vov)
        lam = self.model.lambda_
        vdsat = self._vdsat(vov)
        if vds < vdsat:
            return beta * vds * (1.0 + lam * vds)
        # Differentiate I = beta(vov) * (vov - vdsat/2) * vdsat with the
        # chain rule through beta (theta) and vdsat (velocity
        # saturation); reduces to beta*vov (= sqrt(2 beta I)) on Level 1.
        core = (vov - vdsat / 2.0) * vdsat
        theta = self.model.theta if self.model.level >= 2 else 0.0
        dbeta = -theta * beta / (1.0 + theta * vov) if theta > 0 else 0.0
        dvdsat = self._dvdsat(vov)
        dcore = (1.0 - dvdsat / 2.0) * vdsat + (vov - vdsat / 2.0) * dvdsat
        return (dbeta * core + beta * dcore) * (1.0 + lam * vds)

    def gmb(self, vgs: float, vds: float, vsb: float = 0.0) -> float:
        """Body transconductance [S] (paper Eq. 3)."""
        chi = self.model.gamma / (
            2.0 * math.sqrt(self.model.phi + max(vsb, 0.0))
        )
        return chi * self.gm(vgs, vds, vsb)

    def gds(self, vgs: float, vds: float, vsb: float = 0.0) -> float:
        """Output conductance dIds/dVds [S] (paper Eq. 4)."""
        vov = self.overdrive(vgs, vsb)
        if vov <= 0:
            return 0.0
        beta = self._beta(vov)
        lam = self.model.lambda_
        vdsat = self._vdsat(vov)
        if vds < vdsat:
            # d/dVds of beta*(vov - vds/2)*vds*(1+lam*vds)
            return beta * (
                (vov - vds) * (1.0 + lam * vds)
                + (vov - vds / 2.0) * vds * lam
            )
        current = self.ids(vgs, vds, vsb)
        return lam * current / (1.0 + lam * vds)

    def capacitances(
        self, vgs: float, vds: float, vsb: float = 0.0, vdb: float | None = None
    ) -> dict[str, float]:
        """Meyer gate capacitances + overlap + junction capacitances [F].

        ``vdb`` defaults to ``vds + vsb`` (the drain-bulk reverse bias).
        Junction areas use the technology's default diffusion extension
        via ``AD = AS = W * ext`` and ``PD = PS = W + 2*ext``.
        """
        m = self.model
        cox_area = m.cox * self.w * self.l_eff
        region = self.region(vgs, vds, vsb)
        if region is Region.CUTOFF:
            cgs_i = 0.0
            cgd_i = 0.0
            cgb_i = cox_area
        elif region is Region.TRIODE:
            cgs_i = 0.5 * cox_area
            cgd_i = 0.5 * cox_area
            cgb_i = 0.0
        else:
            cgs_i = (2.0 / 3.0) * cox_area
            cgd_i = 0.0
            cgb_i = 0.0
        ext = 1.5e-6  # default diffusion extension; overridden by netlists
        area_j = self.w * ext
        perim_j = self.w + 2.0 * ext
        if vdb is None:
            vdb = vds + vsb

        def junction(v_reverse: float) -> float:
            v = max(v_reverse, 0.0)
            bottom = m.cj * area_j / (1.0 + v / m.pb) ** m.mj
            side = m.cjsw * perim_j / (1.0 + v / m.pb) ** m.mjsw
            return bottom + side

        return {
            "cgs": cgs_i + m.cgso * self.w,
            "cgd": cgd_i + m.cgdo * self.w,
            "cgb": cgb_i + m.cgbo * self.l,
            "cdb": junction(vdb),
            "csb": junction(vsb),
        }

    def small_signal(
        self, vgs: float, vds: float, vsb: float = 0.0
    ) -> SmallSignal:
        """All small-signal parameters at the given bias point."""
        caps = self.capacitances(vgs, vds, vsb)
        return SmallSignal(
            gm=self.gm(vgs, vds, vsb),
            gmb=self.gmb(vgs, vds, vsb),
            gds=self.gds(vgs, vds, vsb),
            **caps,
        )
