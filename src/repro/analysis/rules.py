"""Feasibility rule catalog (F/C/W codes) over interval metric bounds.

The registry mirrors :mod:`repro.lint`: rules carry stable codes so CI
gates and suppressions keep working as the catalog grows.  Codes:

* ``F1xx`` — provably infeasible specifications (a constraint that no
  point in the parameter box can satisfy);
* ``C2xx`` — mutually conflicting constraints (each satisfiable alone,
  impossible together);
* ``W6xx`` — vacuous constraints, degenerate ranges, and analysis
  coverage gaps (never block synthesis).

Every F/C verdict is *sound*: it only fires when the outward-rounded
interval bounds prove the condition over the whole box, so a rejected
spec really has no solution under the APE model.  See
``docs/LINTING.md`` for the catalog with fix hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping

from .interval import Interval
from .model import BOUNDED_METRICS, MetricModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synthesis.specs import Constraint, SynthesisSpec
    from ..technology import Technology

__all__ = [
    "SEVERITIES",
    "Finding",
    "Rule",
    "AnalysisContext",
    "register_rule",
    "registered_rules",
    "get_rule",
    "run_rules",
    "structural_gain_limit",
]

#: Recognized severities, mildest first (``error`` blocks synthesis).
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One feasibility verdict tied to a spec constraint or variable."""

    #: Stable rule code, e.g. ``"F101"``.
    code: str
    severity: str
    message: str
    #: Metric the finding is about (``""`` for box-level findings).
    metric: str = ""
    #: Proven metric bounds over the box, when the rule used them.
    bounds: tuple[float, float] | None = None
    #: The violated/conflicting constraint bound, when applicable.
    bound: float | None = None
    fix_hint: str = ""
    rule_name: str = ""

    def render(self) -> str:
        where = f" [{self.metric}]" if self.metric else ""
        text = f"{self.code} {self.severity}{where}: {self.message}"
        if self.fix_hint:
            text += f" (fix: {self.fix_hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "rule": self.rule_name,
            "severity": self.severity,
            "metric": self.metric,
            "message": self.message,
            "bounds": list(self.bounds) if self.bounds is not None else None,
            "bound": self.bound,
            "fix_hint": self.fix_hint,
        }


@dataclass(frozen=True)
class AnalysisContext:
    """Shared inputs every rule checks against."""

    spec: "SynthesisSpec"
    tech: "Technology"
    #: ``None`` when the topology is outside the closed-form model.
    model: MetricModel | None
    box: Mapping[str, tuple[float, float]]
    #: Guaranteed metric intervals over ``box`` (empty without a model).
    bounds: Mapping[str, Interval]

    def modeled(self, metric: str) -> bool:
        return metric in self.bounds


@dataclass(frozen=True)
class Rule:
    """One registered feasibility rule."""

    code: str
    name: str
    severity: str
    summary: str
    fix_hint: str
    check: Callable[["Rule", AnalysisContext], Iterable[Finding]]

    def finding(
        self,
        message: str,
        *,
        metric: str = "",
        bounds: tuple[float, float] | None = None,
        bound: float | None = None,
        severity: str | None = None,
        fix_hint: str | None = None,
    ) -> Finding:
        return Finding(
            code=self.code,
            severity=severity or self.severity,
            message=message,
            metric=metric,
            bounds=bounds,
            bound=bound,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            rule_name=self.name,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(
    code: str,
    name: str,
    *,
    severity: str = "error",
    summary: str,
    fix_hint: str = "",
) -> Callable[[Callable[[Rule, AnalysisContext], Iterable[Finding]]], Rule]:
    """Decorator registering a check function under a stable code."""
    if severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}")

    def decorate(
        fn: Callable[[Rule, AnalysisContext], Iterable[Finding]]
    ) -> Rule:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        rule = Rule(
            code=code,
            name=name,
            severity=severity,
            summary=summary,
            fix_hint=fix_hint,
            check=fn,
        )
        _REGISTRY[code] = rule
        return rule

    return decorate


def registered_rules() -> list[Rule]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown analysis rule {code!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def run_rules(context: AnalysisContext) -> list[Finding]:
    """Run the whole catalog; findings ordered most severe first."""
    findings: list[Finding] = []
    for rule in registered_rules():
        findings.extend(rule.check(rule, context))
    order = {sev: i for i, sev in enumerate(SEVERITIES)}
    findings.sort(key=lambda f: (-order[f.severity], f.code, f.metric))
    return findings


def structural_gain_limit(tech: "Technology") -> float:
    """The two-stage gain ceiling ``a1_max * a2_max`` of a technology.

    Matches :func:`~repro.opamp.estimator.design_opamp`'s hard check:
    with the minimum usable overdrives, no overdrive split can deliver
    more low-frequency gain from the diff + common-source cascade (the
    buffer's gain is <= 1 and only tightens this).
    """
    from ..opamp.estimator import VOV1_MIN, VOV6_MIN

    lam_sum = tech.nmos.lambda_ + tech.pmos.lambda_
    return (2.0 / (VOV1_MIN * lam_sum)) * (2.0 / (VOV6_MIN * lam_sum))


def _fmt(value: float) -> str:
    return f"{value:.4g}"


def _constraints(context: AnalysisContext) -> Iterator["Constraint"]:
    yield from context.spec.constraints


# --------------------------------------------------------------------- F


@register_rule(
    "F101",
    "unreachable-lower-bound",
    severity="error",
    summary="a >= constraint exceeds the metric's proven upper bound",
    fix_hint=(
        "relax the bound, widen the parameter box, or pick a topology "
        "with more headroom for this metric"
    ),
)
def _check_unreachable_lower(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    for c in _constraints(context):
        if c.kind != "ge" or not context.modeled(c.metric):
            continue
        iv = context.bounds[c.metric]
        if iv.hi < c.bound:
            yield rule.finding(
                f"{c.metric} >= {_fmt(c.bound)} is unreachable: the "
                f"entire box yields {c.metric} <= {_fmt(iv.hi)}",
                metric=c.metric,
                bounds=(iv.lo, iv.hi),
                bound=c.bound,
            )


@register_rule(
    "F102",
    "unreachable-upper-bound",
    severity="error",
    summary="a <= constraint lies below the metric's proven lower bound",
    fix_hint=(
        "raise the budget, widen the parameter box, or pick a leaner "
        "topology for this metric"
    ),
)
def _check_unreachable_upper(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    for c in _constraints(context):
        if c.kind != "le" or not context.modeled(c.metric):
            continue
        iv = context.bounds[c.metric]
        if iv.lo > c.bound:
            yield rule.finding(
                f"{c.metric} <= {_fmt(c.bound)} is unreachable: the "
                f"entire box yields {c.metric} >= {_fmt(iv.lo)}",
                metric=c.metric,
                bounds=(iv.lo, iv.hi),
                bound=c.bound,
            )


@register_rule(
    "F103",
    "empty-spec-window",
    severity="error",
    summary="a metric's >= bound exceeds its <= bound (no value satisfies both)",
    fix_hint="fix the inconsistent pair of bounds in the specification",
)
def _check_empty_window(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    lows: dict[str, float] = {}
    highs: dict[str, float] = {}
    for c in _constraints(context):
        if c.kind == "ge":
            lows[c.metric] = max(lows.get(c.metric, -float("inf")), c.bound)
        else:
            highs[c.metric] = min(highs.get(c.metric, float("inf")), c.bound)
    for metric in sorted(set(lows) & set(highs)):
        if lows[metric] > highs[metric]:
            yield rule.finding(
                f"{metric} window is empty: >= {_fmt(lows[metric])} "
                f"contradicts <= {_fmt(highs[metric])}",
                metric=metric,
                bound=lows[metric],
            )


@register_rule(
    "F104",
    "gain-beyond-structural-limit",
    severity="error",
    summary="required gain exceeds the technology's two-stage ceiling",
    fix_hint=(
        "lower the gain target, cascade more stages, or use a "
        "longer-channel (smaller lambda) technology"
    ),
)
def _check_structural_gain(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    limit = structural_gain_limit(context.tech)
    for c in _constraints(context):
        if c.metric != "gain" or c.kind != "ge":
            continue
        if c.bound > limit:
            yield rule.finding(
                f"gain >= {_fmt(c.bound)} exceeds the two-stage "
                f"structural ceiling ~{limit:.0f} in {context.tech.name}",
                metric="gain",
                bound=c.bound,
            )


# --------------------------------------------------------------------- C


@register_rule(
    "C201",
    "power-slew-conflict",
    severity="error",
    summary="the slew-rate demand forces more current than the power budget allows",
    fix_hint=(
        "raise the power budget, relax the slew rate, or shrink the "
        "load/compensation capacitance the slewing current must charge"
    ),
)
def _check_power_slew(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    model = context.model
    if model is None:
        return
    slew_req = max(
        (c.bound for c in _constraints(context)
         if c.metric == "slew_rate" and c.kind == "ge"),
        default=0.0,
    )
    power_cap = min(
        (c.bound for c in _constraints(context)
         if c.metric == "dc_power" and c.kind == "le"),
        default=float("inf"),
    )
    if slew_req <= 0.0 or not power_cap < float("inf"):
        return
    # The smallest branch current any in-box design needs to slew at
    # the demanded rate: the slewing capacitor is CL for a two-stage
    # output (and for an uncompensated single stage), or the dominant-
    # pole capacitor's box minimum behind a buffer.
    cc_lo = context.box.get("cc", (model.cc0, model.cc0))[0]
    if model.two_stage or model.cc0 <= 0:
        i_floor = slew_req * model.cl
        charged = f"the {_fmt(model.cl)} F load"
    else:
        i_floor = slew_req * cc_lo
        charged = f"the compensation capacitor (>= {_fmt(cc_lo)} F)"
    p_floor = model.span * i_floor
    if p_floor > power_cap:
        yield rule.finding(
            f"slew_rate >= {_fmt(slew_req)} V/s forces at least "
            f"{_fmt(i_floor)} A through {charged}, i.e. dc_power >= "
            f"{_fmt(p_floor)} W, but the budget is "
            f"dc_power <= {_fmt(power_cap)} W",
            metric="slew_rate",
            bound=slew_req,
            bounds=(p_floor, float("inf")),
        )


@register_rule(
    "C202",
    "pairwise-constraint-conflict",
    severity="error",
    summary=(
        "two individually feasible constraints exclude each other: "
        "contracting the box to one provably violates the other"
    ),
    fix_hint="relax one of the two named bounds; they compete for the same box",
)
def _check_pairwise_conflict(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    from .contract import contract_box

    model = context.model
    if model is None:
        return
    modeled = [
        c for c in _constraints(context)
        if context.modeled(c.metric)
    ]
    # Only constraints that are individually satisfiable somewhere in
    # the box (otherwise F101/F102 already reported them).
    live: list["Constraint"] = []
    for c in modeled:
        iv = context.bounds[c.metric]
        sat = iv.hi >= c.bound if c.kind == "ge" else iv.lo <= c.bound
        if sat:
            live.append(c)
    if len(live) != len(modeled):
        # Some constraint is individually unreachable, so F101/F102
        # already proved the spec infeasible; the pairwise contraction
        # sweep costs ~10x the rest of the analysis and could only add
        # a redundant second verdict.
        return
    reported: set[tuple[str, ...]] = set()
    for anchor in live:
        contracted = contract_box(
            model, context.box, [anchor], slack=False
        )
        if contracted is None:
            continue
        bounds = model.bounds(contracted)
        for other in live:
            if other is anchor:
                continue
            key = tuple(
                sorted((f"{anchor.metric}:{anchor.kind}",
                        f"{other.metric}:{other.kind}"))
            )
            if key in reported or other.metric not in bounds:
                continue
            iv = bounds[other.metric]
            violated = (
                iv.hi < other.bound if other.kind == "ge" else iv.lo > other.bound
            )
            if violated:
                reported.add(key)
                yield rule.finding(
                    f"{anchor.metric} {anchor.kind} {_fmt(anchor.bound)} "
                    f"and {other.metric} {other.kind} {_fmt(other.bound)} "
                    "conflict: every box point compatible with the first "
                    "provably violates the second",
                    metric=other.metric,
                    bounds=(iv.lo, iv.hi),
                    bound=other.bound,
                )


# --------------------------------------------------------------------- W


@register_rule(
    "W601",
    "vacuous-constraint",
    severity="info",
    summary="a constraint is satisfied by every point of the box",
    fix_hint="the bound never binds; drop it or tighten it if it was meant to",
)
def _check_vacuous(rule: Rule, context: AnalysisContext) -> Iterable[Finding]:
    for c in _constraints(context):
        if not context.modeled(c.metric):
            continue
        iv = context.bounds[c.metric]
        vacuous = iv.lo >= c.bound if c.kind == "ge" else iv.hi <= c.bound
        if vacuous:
            yield rule.finding(
                f"{c.metric} {c.kind} {_fmt(c.bound)} holds everywhere "
                f"in the box (proven {c.metric} in "
                f"[{_fmt(iv.lo)}, {_fmt(iv.hi)}])",
                metric=c.metric,
                bounds=(iv.lo, iv.hi),
                bound=c.bound,
            )


@register_rule(
    "W602",
    "degenerate-range",
    severity="warning",
    summary="a search variable's range is (nearly) a single point",
    fix_hint=(
        "widen the range or remove the variable; a point range wastes "
        "annealer moves"
    ),
)
def _check_degenerate(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    for name in sorted(context.box):
        lo, hi = context.box[name]
        if hi <= lo * (1.0 + 1e-9):
            yield rule.finding(
                f"variable {name} is pinned to [{_fmt(lo)}, {_fmt(hi)}]",
                metric=name,
                bounds=(lo, hi),
            )


@register_rule(
    "W603",
    "unanalyzable-metric",
    severity="info",
    summary="a constraint's metric is outside the closed-form model",
    fix_hint=(
        "the bound is checked at solve time only; no static verdict is "
        "possible for this metric"
    ),
)
def _check_unanalyzable(
    rule: Rule, context: AnalysisContext
) -> Iterable[Finding]:
    seen: set[str] = set()
    for c in _constraints(context):
        if c.metric in seen or context.modeled(c.metric):
            continue
        if context.model is not None and c.metric in BOUNDED_METRICS:
            continue  # modeled in principle; bounds just absent
        seen.add(c.metric)
        yield rule.finding(
            f"{c.metric} is not covered by the interval model; the "
            f"{c.kind} {_fmt(c.bound)} bound cannot be analyzed statically",
            metric=c.metric,
            bound=c.bound,
        )
