"""Analysis entry points: spec feasibility over a template or problem.

Two levels of entry:

* :func:`analyze_opamp` — the synthesis engine's hook: given a sized
  template, the annealer's variable box, and the synthesis spec, run
  the interval model, the rule catalog, and (optionally) the box
  contraction, returning an :class:`AnalysisReport`.
* :func:`analyze_problem` — the CLI's hook: given only (technology,
  Table-1 spec, topology), build the template the way ``repro
  synthesize`` would (APE sizing with the coarse fallback ladder) and
  delegate; when even the coarse sizing fails, the spec-only rules
  (empty windows, structural gain ceiling) still run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from .contract import contract_box
from .interval import Interval, IntervalDomainError
from .model import MetricModel, UnsupportedTopologyError
from .rules import SEVERITIES, AnalysisContext, Finding, run_rules

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..opamp.estimator import OpAmp
    from ..opamp.topology import OpAmpSpec, OpAmpTopology
    from ..synthesis.problems import Variable
    from ..synthesis.specs import SynthesisSpec
    from ..technology import Technology

__all__ = ["AnalysisReport", "analyze_opamp", "analyze_problem", "REPORT_SCHEMA"]

#: Schema tag stamped into :meth:`AnalysisReport.to_dict`.
REPORT_SCHEMA = "repro-analysis/1"

#: Box modes :func:`analyze_problem` accepts (mirrors ``repro synthesize``).
BOX_MODES = ("ape", "standalone")


def _json_num(value: float) -> float | str:
    """JSON-safe endpoint: infinities become strings, finite stay float."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _json_range(pair: tuple[float, float]) -> list[float | str]:
    return [_json_num(pair[0]), _json_num(pair[1])]


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the feasibility analysis proved about one problem."""

    #: Problem/template name the analysis ran against.
    name: str
    #: Box mode: ``"template"`` (caller-supplied variables), ``"ape"``,
    #: ``"standalone"``, or ``"spec-only"`` (no template available).
    mode: str
    #: False when the topology is outside the closed-form interval
    #: model — only spec-level rules were checked.
    topology_supported: bool
    findings: tuple[Finding, ...]
    #: Guaranteed metric intervals over the box (empty without a model).
    bounds: Mapping[str, Interval]
    #: The analyzed parameter box (variable name → (lo, hi)).
    box: Mapping[str, tuple[float, float]]
    #: The spec-consistent sub-box, or ``None`` when contraction was
    #: disabled, unavailable, or the whole box is provably infeasible.
    contracted: Mapping[str, tuple[float, float]] | None

    @property
    def feasible(self) -> bool:
        """True when no rule *proved* the spec unsatisfiable."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def error_codes(self) -> tuple[str, ...]:
        return tuple(
            sorted({f.code for f in self.findings if f.severity == "error"})
        )

    def counts(self) -> dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for f in self.findings:
            out[f.severity] += 1
        return out

    def contraction_summary(self) -> list[tuple[str, tuple[float, float], tuple[float, float]]]:
        """Variables whose range actually shrank: (name, before, after)."""
        if self.contracted is None:
            return []
        out = []
        for name in sorted(self.box):
            before = self.box[name]
            after = self.contracted.get(name, before)
            if after != before:
                out.append((name, before, after))
        return out

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": REPORT_SCHEMA,
            "name": self.name,
            "mode": self.mode,
            "feasible": self.feasible,
            "topology_supported": self.topology_supported,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
            "bounds": {
                metric: _json_range((iv.lo, iv.hi))
                for metric, iv in sorted(self.bounds.items())
            },
            "box": {
                name: _json_range(pair) for name, pair in sorted(self.box.items())
            },
            "contracted": None
            if self.contracted is None
            else {
                name: _json_range(pair)
                for name, pair in sorted(self.contracted.items())
            },
        }

    def render_text(self) -> str:
        lines = [f"feasibility analysis: {self.name} [{self.mode}]"]
        counts = self.counts()
        verdict = "FEASIBLE" if self.feasible else "INFEASIBLE"
        if not self.topology_supported:
            verdict += " (spec-level checks only; topology not modeled)"
        lines.append(
            f"  verdict: {verdict} "
            f"({counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} notes)"
        )
        if self.bounds:
            lines.append("  proven metric bounds over the box:")
            for metric in sorted(self.bounds):
                iv = self.bounds[metric]
                lines.append(f"    {metric:>10}: [{iv.lo:.4g}, {iv.hi:.4g}]")
        for f in self.findings:
            lines.append(f"  {f.render()}")
        shrunk = self.contraction_summary()
        if shrunk:
            lines.append("  contracted ranges:")
            for name, (b_lo, b_hi), (a_lo, a_hi) in shrunk:
                lines.append(
                    f"    {name}: [{b_lo:.4g}, {b_hi:.4g}] -> "
                    f"[{a_lo:.4g}, {a_hi:.4g}]"
                )
        elif self.contracted is not None:
            lines.append("  contraction: no range could be shrunk")
        return "\n".join(lines)


def _unsupported_finding(reason: str) -> Finding:
    return Finding(
        code="W604",
        severity="warning",
        message=reason,
        fix_hint=(
            "only spec-level rules were checked; interval bounds are "
            "unavailable for this topology"
        ),
        rule_name="unsupported-topology",
    )


def analyze_opamp(
    template: "OpAmp",
    variables: Sequence["Variable"],
    synthesis_spec: "SynthesisSpec",
    *,
    contract: bool = True,
    mode: str = "template",
) -> AnalysisReport:
    """Feasibility analysis of a sized template over a variable box."""
    box = {v.name: (v.lo, v.hi) for v in variables}
    model: MetricModel | None
    bounds: dict[str, Interval]
    unsupported: Finding | None = None
    try:
        model = MetricModel(template)
        bounds = model.bounds(box)
    except (UnsupportedTopologyError, IntervalDomainError) as exc:
        model = None
        bounds = {}
        unsupported = _unsupported_finding(str(exc))

    context = AnalysisContext(
        spec=synthesis_spec,
        tech=template.tech,
        model=model,
        box=box,
        bounds=bounds,
    )
    findings = run_rules(context)
    if unsupported is not None:
        findings.append(unsupported)

    contracted: dict[str, tuple[float, float]] | None = None
    if contract and model is not None:
        contracted = contract_box(model, box, synthesis_spec.constraints)

    return AnalysisReport(
        name=template.name,
        mode=mode,
        topology_supported=model is not None,
        findings=tuple(findings),
        bounds=bounds,
        box=box,
        contracted=contracted,
    )


def _spec_only_report(
    name: str,
    tech: "Technology",
    synthesis_spec: "SynthesisSpec",
    reason: str,
) -> AnalysisReport:
    context = AnalysisContext(
        spec=synthesis_spec, tech=tech, model=None, box={}, bounds={}
    )
    findings = run_rules(context)
    findings.append(_unsupported_finding(reason))
    return AnalysisReport(
        name=name,
        mode="spec-only",
        topology_supported=False,
        findings=tuple(findings),
        bounds={},
        box={},
        contracted=None,
    )


def analyze_problem(
    tech: "Technology",
    spec: "OpAmpSpec",
    topology: "OpAmpTopology | None" = None,
    synthesis_spec: "SynthesisSpec | None" = None,
    *,
    mode: str = "ape",
    range_factor: float = 0.2,
    contract: bool = True,
    name: str = "opamp",
) -> AnalysisReport:
    """Feasibility analysis from raw (technology, spec, topology).

    Builds the same template ``repro synthesize`` would — exact APE
    sizing first, then the coarse relaxation ladder — and analyzes the
    resulting parameter box against the synthesis spec.  When even the
    coarse sizing fails, the spec-only rules still run (an inconsistent
    or structurally impossible spec should be reported, not crash).
    """
    from ..errors import EstimationError
    from ..opamp.estimator import coarse_design_opamp, design_opamp
    from ..synthesis.problems import ape_ranges, standalone_ranges
    from ..synthesis.specs import opamp_synthesis_spec

    if mode not in BOX_MODES:
        raise ValueError(f"mode must be one of {BOX_MODES}, got {mode!r}")
    synth = synthesis_spec if synthesis_spec is not None else opamp_synthesis_spec(spec)

    template: "OpAmp | None" = None
    try:
        template = design_opamp(tech, spec, topology, name)
    except EstimationError:
        try:
            template, _diags = coarse_design_opamp(tech, spec, topology, name)
        except EstimationError as exc:
            return _spec_only_report(
                name,
                tech,
                synth,
                f"{name}: no template available — APE sizing failed even "
                f"after relaxation ({exc})",
            )

    variables = (
        ape_ranges(template, range_factor)
        if mode == "ape"
        else standalone_ranges(template)
    )
    return analyze_opamp(
        template, variables, synth, contract=contract, mode=mode
    )
