"""Sound interval arithmetic for the spec feasibility analyzer.

The abstract domain is the closed real interval ``[lo, hi]`` (endpoints
may be infinite).  Every operation returns an interval that contains
the exact real-arithmetic image of its operands, and — because the
concrete estimator evaluates the *same* expressions in IEEE floats —
every result is additionally inflated outward by a few ulps so that
float rounding on either side can never break containment.

Domain conventions (exercised by the property tests):

* division by an interval straddling zero widens to the half-line(s)
  reachable from the numerator, up to the full extended real line;
* ``log`` over an interval that crosses zero is evaluated over the
  intersection with the domain ``(0, inf)`` (lower bound ``-inf``);
* ``sqrt`` clips its argument to ``[0, inf)`` the same way.

Both clips are sound for the analyzer's use: the concrete model only
ever feeds these functions non-negative values, and an interval that
merely *reaches* below zero still has its in-domain image contained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

__all__ = ["Interval", "IntervalDomainError", "Num", "isqrt", "ilog", "iexp", "imin", "imax"]

#: Ulps of outward inflation applied to every inexact operation.  Two
#: cover a correctly rounded primitive on each side; four leave margin
#: for libm functions that are only faithfully rounded.
_ULPS = 4

Num = Union[float, "Interval"]


class IntervalDomainError(ValueError):
    """An interval lies entirely outside a function's domain."""


def _widen(lo: float, hi: float) -> tuple[float, float]:
    """Inflate ``[lo, hi]`` outward by :data:`_ULPS` ulps per side."""
    for _ in range(_ULPS):
        lo = math.nextafter(lo, -math.inf)
        hi = math.nextafter(hi, math.inf)
    return lo, hi


def _mul_ep(x: float, y: float) -> float:
    """Endpoint product with the IEEE ``0 * inf -> nan`` case pinned to 0."""
    if x == 0.0 or y == 0.0:
        return 0.0
    return x * y


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` over the extended reals."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ValueError("interval endpoints must not be NaN")
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    # -- constructors / predicates ------------------------------------

    @classmethod
    def point(cls, value: float) -> "Interval":
        return cls(value, value)

    @classmethod
    def coerce(cls, value: "Num") -> "Interval":
        if isinstance(value, Interval):
            return value
        return cls(float(value), float(value))

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __repr__(self) -> str:
        return f"Interval({self.lo!r}, {self.hi!r})"

    # -- arithmetic ----------------------------------------------------

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)  # exact

    def __add__(self, other: "Num") -> "Interval":
        o = Interval.coerce(other)
        return Interval(*_widen(self.lo + o.lo, self.hi + o.hi))

    __radd__ = __add__

    def __sub__(self, other: "Num") -> "Interval":
        o = Interval.coerce(other)
        return Interval(*_widen(self.lo - o.hi, self.hi - o.lo))

    def __rsub__(self, other: "Num") -> "Interval":
        return Interval.coerce(other) - self

    def __mul__(self, other: "Num") -> "Interval":
        o = Interval.coerce(other)
        products = (
            _mul_ep(self.lo, o.lo),
            _mul_ep(self.lo, o.hi),
            _mul_ep(self.hi, o.lo),
            _mul_ep(self.hi, o.hi),
        )
        return Interval(*_widen(min(products), max(products)))

    __rmul__ = __mul__

    def reciprocal(self) -> "Interval":
        """``1 / self`` with zero-crossing semantics.

        A divisor straddling zero (strictly, or the degenerate ``[0,
        0]``) yields the full extended line; a divisor touching zero at
        one endpoint yields the corresponding half-line.
        """
        lo, hi = self.lo, self.hi
        if lo < 0.0 < hi or (lo == 0.0 and hi == 0.0):
            return Interval(-math.inf, math.inf)
        if lo == 0.0:  # [0, hi], hi > 0
            return Interval(*_widen(1.0 / hi, math.inf))
        if hi == 0.0:  # [lo, 0], lo < 0
            return Interval(*_widen(-math.inf, 1.0 / lo))
        inv_lo = 0.0 if math.isinf(hi) else 1.0 / hi
        inv_hi = 0.0 if math.isinf(lo) else 1.0 / lo
        return Interval(*_widen(inv_lo, inv_hi))

    def __truediv__(self, other: "Num") -> "Interval":
        return self * Interval.coerce(other).reciprocal()

    def __rtruediv__(self, other: "Num") -> "Interval":
        return Interval.coerce(other) * self.reciprocal()

    def __pow__(self, exponent: int) -> "Interval":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError(
                f"interval power supports non-negative integers, got {exponent!r}"
            )
        if exponent == 0:
            return Interval.point(1.0)
        candidates = [self.lo**exponent, self.hi**exponent]
        if exponent % 2 == 0 and self.lo < 0.0 < self.hi:
            candidates.append(0.0)
        return Interval(*_widen(min(candidates), max(candidates)))

    def __abs__(self) -> "Interval":
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))  # exact


# -- generic numeric helpers (float or Interval) ------------------------
#
# The metric model is written once over these; with floats it IS the
# concrete estimator, with intervals it is the abstract interpreter, so
# containment holds by construction.


def isqrt(value: Num) -> Num:
    """Square root; interval arguments are clipped to ``[0, inf)``."""
    if isinstance(value, Interval):
        if value.hi < 0.0:
            raise IntervalDomainError(f"sqrt of all-negative interval {value}")
        lo = math.sqrt(max(value.lo, 0.0))
        hi = math.inf if math.isinf(value.hi) else math.sqrt(value.hi)
        lo, hi = _widen(lo, hi)
        return Interval(max(lo, 0.0), hi)
    return math.sqrt(value)


def ilog(value: Num) -> Num:
    """Natural log; interval arguments are clipped to ``(0, inf)``."""
    if isinstance(value, Interval):
        if value.hi <= 0.0:
            raise IntervalDomainError(f"log of non-positive interval {value}")
        lo = -math.inf if value.lo <= 0.0 else math.log(value.lo)
        hi = math.inf if math.isinf(value.hi) else math.log(value.hi)
        return Interval(*_widen(lo, hi))
    return math.log(value)


def iexp(value: Num) -> Num:
    if isinstance(value, Interval):
        try:
            lo = math.exp(value.lo)
        except OverflowError:
            lo = math.inf
        try:
            hi = math.exp(value.hi)
        except OverflowError:
            hi = math.inf
        lo, hi = _widen(lo, hi)
        return Interval(max(lo, 0.0), hi)
    return math.exp(value)


def imin(a: Num, b: Num) -> Num:
    if isinstance(a, Interval) or isinstance(b, Interval):
        ia, ib = Interval.coerce(a), Interval.coerce(b)
        return Interval(min(ia.lo, ib.lo), min(ia.hi, ib.hi))  # exact
    return min(a, b)


def imax(a: Num, b: Num) -> Num:
    if isinstance(a, Interval) or isinstance(b, Interval):
        ia, ib = Interval.coerce(a), Interval.coerce(b)
        return Interval(max(ia.lo, ib.lo), max(ia.hi, ib.hi))  # exact
    return max(a, b)
