"""Spec feasibility analyzer: interval abstract interpretation over APE.

The package sits between the estimator (:mod:`repro.opamp`) and the
synthesis engine (:mod:`repro.synthesis`): it propagates interval
bounds through the same square-law performance equations the estimator
evaluates — technology card, parameter box, level-1 device sizing,
level-2 components, level-3 op-amp composition — and proves, without a
single Newton solve, whether any point of the annealer's search box can
satisfy a specification.  On top of the interval engine it ships a
rule catalog with stable F/C/W codes (see ``docs/LINTING.md``) and a
sound box contraction that shrinks each parameter range to the
sub-interval that can possibly meet the spec.
"""

from .contract import GE_SLACK, LE_SLACK, contract_box
from .core import REPORT_SCHEMA, AnalysisReport, analyze_opamp, analyze_problem
from .interval import Interval, IntervalDomainError, Num, iexp, ilog, imax, imin, isqrt
from .model import BOUNDED_METRICS, MetricModel, UnsupportedTopologyError
from .rules import (
    SEVERITIES,
    AnalysisContext,
    Finding,
    Rule,
    get_rule,
    register_rule,
    registered_rules,
    run_rules,
    structural_gain_limit,
)
from .screen import TopologyVerdict, default_topology_choices, screen_topologies

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "BOUNDED_METRICS",
    "Finding",
    "GE_SLACK",
    "Interval",
    "IntervalDomainError",
    "LE_SLACK",
    "MetricModel",
    "Num",
    "REPORT_SCHEMA",
    "Rule",
    "SEVERITIES",
    "TopologyVerdict",
    "UnsupportedTopologyError",
    "analyze_opamp",
    "analyze_problem",
    "contract_box",
    "default_topology_choices",
    "get_rule",
    "iexp",
    "ilog",
    "imax",
    "imin",
    "isqrt",
    "register_rule",
    "registered_rules",
    "run_rules",
    "screen_topologies",
    "structural_gain_limit",
]
