"""Sound box contraction: shrink parameter ranges the spec rules out.

For each search variable, each side of its range is pushed inward to
the largest prefix that is *provably infeasible* — a sub-box on which
the interval bounds show some constraint violated everywhere.  Removing
such a prefix can never exclude a feasible point, so the contracted box
is safe to hand to the annealer: every spec-satisfying design of the
original box survives.

The dichotomy runs in log space (the annealer samples log-uniformly)
and only ever cuts at a test point whose prefix was itself proven
infeasible, never at an interpolated one.  By default the constraint
bounds are *slacked* (``>=`` halved, ``<=`` doubled) before contracting:
the interval model is the APE square-law estimate, and the slack keeps
designs the full simulator would accept — but the model slightly
misjudges — inside the box.  Infeasibility *verdicts* (F-codes) always
use the exact bounds; only the box surgery is softened.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

from .model import MetricModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synthesis.specs import Constraint

__all__ = ["contract_box", "GE_SLACK", "LE_SLACK"]

#: Slack factors applied to constraint bounds before cutting the box.
GE_SLACK = 0.5
LE_SLACK = 2.0

#: Log-space dichotomy steps per side (resolves ~1/2^12 of the decade
#: span) and alternating sweeps over the variables (a cut on one
#: variable can expose cuts on another).
_STEPS = 12
_SWEEPS = 2


def _slacked(
    constraints: Sequence["Constraint"], slack: bool
) -> list[tuple[str, str, float]]:
    out: list[tuple[str, str, float]] = []
    for c in constraints:
        bound = c.bound
        if slack:
            bound = bound * (GE_SLACK if c.kind == "ge" else LE_SLACK)
        out.append((c.metric, c.kind, bound))
    return out


def _provably_infeasible(
    model: MetricModel,
    box: Mapping[str, tuple[float, float]],
    constraints: Sequence[tuple[str, str, float]],
) -> bool:
    """True when some constraint is violated on every point of ``box``."""
    bounds = model.bounds(box)
    for metric, kind, bound in constraints:
        iv = bounds.get(metric)
        if iv is None:
            continue
        if kind == "ge":
            if iv.hi < bound:
                return True
        elif iv.lo > bound:
            return True
    return False


def contract_box(
    model: MetricModel,
    box: Mapping[str, tuple[float, float]],
    constraints: Sequence["Constraint"],
    *,
    slack: bool = True,
    steps: int = _STEPS,
    sweeps: int = _SWEEPS,
) -> dict[str, tuple[float, float]] | None:
    """The sub-box that can possibly satisfy ``constraints``.

    Returns a (possibly identical) copy of ``box`` with provably dead
    range prefixes removed, or ``None`` when the *whole* box is provably
    infeasible — the caller should have rejected via the F-rules first,
    but degenerate inputs stay well-defined.
    """
    checks = _slacked(
        [c for c in constraints if c.metric in model.bounds(box)], slack
    )
    current = {name: (lo, hi) for name, (lo, hi) in box.items()}
    if not checks:
        return current
    if _provably_infeasible(model, current, checks):
        return None

    def prefix_infeasible(name: str, lo: float, hi: float) -> bool:
        trial = dict(current)
        trial[name] = (lo, hi)
        return _provably_infeasible(model, trial, checks)

    for _ in range(max(sweeps, 1)):
        changed = False
        for name in sorted(current):
            for side in ("lo", "hi"):
                lo, hi = current[name]
                if hi <= lo or lo <= 0.0:
                    continue
                span = math.log(hi / lo)
                if span <= 0.0:
                    continue

                def prefix(t: float) -> tuple[float, float]:
                    """The prefix sub-range of log-fraction ``t``."""
                    if side == "lo":
                        return lo, min(lo * math.exp(span * t), hi)
                    return max(hi * math.exp(-span * t), lo), hi

                # The degenerate slice at the endpoint itself must be
                # provably dead before anything is cut at all.
                anchor = (lo, lo) if side == "lo" else (hi, hi)
                if not prefix_infeasible(name, *anchor):
                    continue
                t_dead, t_open = 0.0, 1.0
                for _ in range(max(steps, 1)):
                    mid = 0.5 * (t_dead + t_open)
                    if prefix_infeasible(name, *prefix(mid)):
                        t_dead = mid
                    else:
                        t_open = mid
                if t_dead <= 0.0:
                    continue
                p_lo, p_hi = prefix(t_dead)
                if side == "lo" and p_hi > lo:
                    current[name] = (p_hi, hi)
                    changed = True
                elif side == "hi" and p_lo < hi:
                    current[name] = (lo, p_lo)
                    changed = True
        if not changed:
            break
    return current
