"""Generic (float-or-interval) APE metric model of a sized op-amp.

:class:`MetricModel` compiles an :class:`~repro.opamp.estimator.OpAmp`
template into one closed-form function from the synthesis engine's
search parameters (device geometries, ``cc``, ``r.ref``, ``r.bias``) to
the APE performance figures — gain, UGF, slew rate, power, area, CMRR,
realised reference current.  The function is written once over the
:data:`~repro.analysis.interval.Num` union:

* with **floats** it is the concrete square-law estimator — the
  reference the soundness property tests sample;
* with **intervals** it is the abstract interpreter — every metric
  bound is guaranteed to contain all concrete values over the box,
  because both evaluations run the exact same branch-free expressions
  and every interval primitive is outward-rounded.

Structure (topology, device multiplicities, frozen bias voltages) comes
from the template; only the search parameters vary.  Threshold voltages
are frozen at each template device's source-bulk bias and the body
factor ``chi = gmb/gm`` at the template operating point — the standard
APE simplification that keeps every expression closed-form.

The bias chain follows the netlist exactly (``place_opamp``): the
reference branch is VDD → ``r.ref`` → tail-mirror diode stack → VSS,
solved in closed form from ``r i + C sqrt(i) = V``; the tail current is
the geometric mirror ratio times the reference current; the stage-2 and
buffer sink currents mirror the ``r.bias``-programmed diode branch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, TYPE_CHECKING

from .interval import Interval, Num, imax, imin, isqrt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..opamp.estimator import OpAmp

__all__ = ["MetricModel", "UnsupportedTopologyError", "BOUNDED_METRICS"]

#: Metrics the model bounds.  Constraints on anything else (e.g.
#: ``phase_margin``, ``offset``) are outside the closed-form estimator
#: hierarchy and are reported as un-analyzable, never as infeasible.
BOUNDED_METRICS = (
    "gain",
    "ugf",
    "slew_rate",
    "dc_power",
    "gate_area",
    "i_ref",
    "cmrr",
)

#: Effective channel length floor [m] — keeps ``w / l_eff`` defined for
#: pathological user boxes; problem-generated boxes never reach it.
_L_EFF_FLOOR = 1e-9


class UnsupportedTopologyError(ValueError):
    """The template's topology is outside the closed-form model."""


@dataclass(frozen=True)
class _Device:
    """Per-device constants compiled from the template."""

    #: Parameter-key prefix, e.g. ``"diff.pair"``.
    key: str
    kp: float
    lam: float
    ld: float
    #: Threshold magnitude at the template source-bulk bias [V].
    vth: float
    #: Template geometry — defaults when a key is absent from ``values``.
    w0: float
    l0: float
    #: Placed-device multiplicity (matched pairs count twice).
    count: int = 1
    #: Frozen bias-point corrections: the device model's Level-1 drain
    #: current carries a ``(1 + lambda Vds)`` channel-length-modulation
    #: factor, so at the template operating point the true ``gm`` runs
    #: ``sqrt(1 + lambda Vds)`` above the plain square law and the true
    #: ``gds / Id`` below ``lambda``.  Freezing both ratios at the
    #: template bias (exactly like ``vth`` and ``chi``) keeps every
    #: expression closed-form while matching the estimator's composed
    #: figures at the design point.
    gm_k: float = 1.0
    lam_eff: float = 0.0


def _compile_device(stage: str, role: str, sized: object, count: int) -> _Device:
    model = sized.device.model  # type: ignore[attr-defined]
    ids = sized.op.ids  # type: ignore[attr-defined]
    l_eff = max(sized.l - 2.0 * model.ld, _L_EFF_FLOOR)  # type: ignore[attr-defined]
    gm_sq = math.sqrt(
        max(2.0 * model.kp_effective * (sized.w / l_eff) * ids, 0.0)  # type: ignore[attr-defined]
    )
    gm_k = sized.ss.gm / gm_sq if gm_sq > 0.0 else 1.0  # type: ignore[attr-defined]
    lam_eff = sized.ss.gds / ids if ids > 0.0 else model.lambda_  # type: ignore[attr-defined]
    return _Device(
        key=f"{stage}.{role}",
        kp=model.kp_effective,
        lam=model.lambda_,
        ld=model.ld,
        vth=model.threshold(sized.op.vsb),  # type: ignore[attr-defined]
        w0=sized.w,  # type: ignore[attr-defined]
        l0=sized.l,  # type: ignore[attr-defined]
        count=count,
        gm_k=gm_k,
        lam_eff=lam_eff,
    )


def _solve_bias(r: Num, c: Num, v: float) -> Num:
    """Positive root of ``r i + c sqrt(i) - v = 0`` (diode + resistor).

    The reference branch is a resistor in series with a diode stack
    whose total drop is ``sum(vth) + c sqrt(i)``; with ``v`` the supply
    span net of the (constant) thresholds, the quadratic in ``sqrt(i)``
    has the single positive root ``(-c + sqrt(c^2 + 4 r v)) / (2 r)``.
    Closed-form and monotone — no fixed-point iteration, so the interval
    evaluation needs no widening loop.
    """
    s = (isqrt(c * c + 4.0 * r * v) - c) / (2.0 * r)
    s = imax(s, 0.0)
    return s * s


class MetricModel:
    """Closed-form params → metrics map compiled from a template.

    Raises :class:`UnsupportedTopologyError` for topologies outside the
    square-law composition (currently the folded cascode, whose gain is
    set by cascode structure rather than the overdrive split).
    """

    def __init__(self, template: "OpAmp") -> None:
        from ..components import DiffNmos, SourceFollower
        from ..components.current_sources import (
            CascodeCurrentSource,
            CurrentMirror,
            WilsonCurrentSource,
        )

        tech = template.tech
        self.template = template
        self.vdd = tech.vdd
        self.vss = tech.vss
        self.span = tech.supply_span
        self.lam_sum = tech.nmos.lambda_ + tech.pmos.lambda_
        self.cl = template.spec.cl
        self.two_stage = template.two_stage
        self.has_buffer = template.has_buffer
        self.cc0 = template.cc
        self.r_ref0 = template.r_ref
        self.r_bias0 = template.r_bias

        diff = template.stages.get("diff")
        if diff is None or "tail_source" not in template.stages:
            raise UnsupportedTopologyError(
                f"{template.name}: template lacks a diff/tail stage pair"
            )
        if type(diff).__name__ == "FoldedCascodeDiff":
            raise UnsupportedTopologyError(
                f"{template.name}: the folded-cascode stage's gain is "
                "structural, not closed-form; no interval model available"
            )
        self.diff_is_cmos = not isinstance(diff, DiffNmos)

        tail = template.stages["tail_source"]
        if isinstance(tail, CurrentMirror):
            self.tail_kind = "mirror"
            in_roles, out_roles = ["input"], ["output"]
            self.ratio_roles = ("input", "output")
        elif isinstance(tail, CascodeCurrentSource):
            self.tail_kind = "cascode"
            in_roles = ["input_bottom", "input_top"]
            out_roles = ["output_bottom", "output_top"]
            self.ratio_roles = ("input_bottom", "output_bottom")
        elif isinstance(tail, WilsonCurrentSource):
            self.tail_kind = "wilson"
            # The diode and output device sit in the *output* (tail
            # current) path; the bottom device carries the reference.
            in_roles, out_roles = ["diode", "output"], []
            self.ratio_roles = ("bottom", "diode")
        else:
            raise UnsupportedTopologyError(
                f"{template.name}: unknown tail source "
                f"{type(tail).__name__}"
            )
        #: Tail devices whose diode drops form the reference branch.
        self.tail_stack_roles = in_roles
        self.tail_out_roles = out_roles

        self.devices: dict[str, _Device] = {}
        for stage_name, stage in template.stages.items():
            for role, sized in stage.devices.items():
                count = 2 if stage_name == "diff" else 1
                self.devices[f"{stage_name}.{role}"] = _compile_device(
                    stage_name, role, sized, count
                )

        # Body factor of the diode-loaded diff stage / buffer driver,
        # frozen at the template bias (chi = gmb / gm).
        self.chi_diff_load = 0.0
        if not self.diff_is_cmos:
            load = diff.devices["load"]
            self.chi_diff_load = load.ss.gmb / load.ss.gm if load.ss.gm > 0 else 0.0
        self.chi_buffer = 0.0
        self.g_load = 0.0
        if self.has_buffer:
            buf = template.stages["buffer"]
            assert isinstance(buf, SourceFollower)
            drv = buf.devices["driver"]
            self.chi_buffer = drv.ss.gmb / drv.ss.gm if drv.ss.gm > 0 else 0.0
            r_load = template.topology.z_load
            self.g_load = 0.0 if math.isinf(r_load) else 1.0 / r_load

        # Sink-bias diode branch (fixed geometry — not a search
        # variable; ``place_opamp`` rebuilds it from the technology).
        self.has_sink_bias = "sink_bias" in template.currents
        self.bias_wl = 0.0
        self.bias_c = 0.0
        self.bias_v = 0.0
        self.bias_area = 0.0
        if self.has_sink_bias:
            from ..components.current_sources import DEFAULT_MIRROR_VOV
            from ..devices import size_for_id_vov
            from ..opamp.estimator import SINK_BIAS_CURRENT

            diode = size_for_id_vov(
                tech.nmos, tech, ids=SINK_BIAS_CURRENT, vov=DEFAULT_MIRROR_VOV
            )
            l_eff = max(diode.l - 2.0 * tech.nmos.ld, _L_EFF_FLOOR)
            self.bias_wl = diode.w / l_eff
            self.bias_c = math.sqrt(2.0 / (tech.nmos.kp_effective * self.bias_wl))
            self.bias_v = self.span - tech.nmos.threshold(0.0)
            self.bias_area = diode.w * diode.l

        # Reference-branch constants: supply span net of the (frozen)
        # diode-stack thresholds must be positive or the branch is dead.
        stack_vth = sum(
            self.devices[f"tail_source.{r}"].vth for r in self.tail_stack_roles
        )
        self.ref_v = self.span - stack_vth
        if self.ref_v <= 0.0:
            raise UnsupportedTopologyError(
                f"{template.name}: tail reference stack exceeds the rails"
            )
        if self.has_sink_bias and self.bias_v <= 0.0:
            raise UnsupportedTopologyError(
                f"{template.name}: sink-bias diode exceeds the rails"
            )

    # -- per-evaluation helpers ---------------------------------------

    def _geom(self, dev: _Device, values: Mapping[str, Num]) -> tuple[Num, Num, Num]:
        """(w, l, w/l_eff) for one device at the given parameter point."""
        w = values.get(f"{dev.key}.w", dev.w0)
        l = values.get(f"{dev.key}.l", dev.l0)
        l_eff = imax(l - 2.0 * dev.ld, _L_EFF_FLOOR)
        return w, l, w / l_eff

    def _gm(self, dev: _Device, wl: Num, ids: Num) -> Num:
        """Transconductance ``gm_k sqrt(2 kp (W/L) Id)`` (CLM-corrected)."""
        return dev.gm_k * isqrt(2.0 * dev.kp * wl * ids)

    # -- evaluation ----------------------------------------------------

    def evaluate(self, values: Mapping[str, Num]) -> dict[str, Num]:
        """APE metrics at a parameter point (floats) or box (intervals).

        Missing keys default to the template's value, matching
        :func:`~repro.synthesis.problems.parameterized_opamp`.
        """
        dev = self.devices
        cc = values.get("cc", self.cc0)
        r_ref = values.get("r.ref", self.r_ref0)
        r_bias = values.get("r.bias", self.r_bias0)

        # ---- reference branch and tail current
        geom = {key: self._geom(d, values) for key, d in dev.items()}
        stack_c: Num = 0.0
        for role in self.tail_stack_roles:
            d = dev[f"tail_source.{role}"]
            wl = geom[d.key][2]
            stack_c = stack_c + isqrt(2.0 / (d.kp * wl))
        ref_key, out_key = self.ratio_roles
        wl_ref = geom[f"tail_source.{ref_key}"][2]
        wl_out = geom[f"tail_source.{out_key}"][2]
        ratio = wl_out / wl_ref
        if self.tail_kind == "wilson":
            # The stacked diodes carry the *tail* current (= ratio x
            # i_ref), so the sqrt(i_ref) coefficient scales by sqrt(ratio).
            stack_c = stack_c * isqrt(ratio)
        i_ref = _solve_bias(r_ref, stack_c, self.ref_v)
        itail = i_ref * ratio

        # ---- sink-bias branch (fixed diode, programmed by r.bias)
        i_bias: Num = 0.0
        if self.has_sink_bias:
            i_bias = _solve_bias(r_bias, self.bias_c, self.bias_v)

        # ---- differential stage
        id1 = itail * 0.5
        d_pair = dev["diff.pair"]
        d_load = dev["diff.load"]
        wl_pair = geom["diff.pair"][2]
        wl_load = geom["diff.load"][2]
        gm1 = self._gm(d_pair, wl_pair, id1)
        if self.diff_is_cmos:
            # Eq. 5 with gdl + gdi = Id (lam_i + lam_l), factored so the
            # current appears once: A1 = gm1 / (Id1 lam_sum1).
            lam_sum1 = d_pair.lam_eff + d_load.lam_eff
            a1 = d_pair.gm_k * isqrt(2.0 * d_pair.kp * wl_pair / id1) / lam_sum1
        else:
            gm_load_eff = self._gm(d_load, wl_load, id1) * (1.0 + self.chi_diff_load)
            # Single-ended pick-off halves the differential gain.
            a1 = (gm1 / gm_load_eff) * 0.5

        # ---- tail output conductance (per mirror topology)
        if self.tail_kind == "mirror":
            d_out = dev["tail_source.output"]
            g0 = d_out.lam_eff * itail
        elif self.tail_kind == "cascode":
            d_top = dev["tail_source.output_top"]
            d_bot = dev["tail_source.output_bottom"]
            gm_top = self._gm(d_top, geom[d_top.key][2], itail)
            g0 = (d_top.lam_eff * itail) * (d_bot.lam_eff * itail) / gm_top
        else:  # wilson: zout = gm ro_top ro_bottom / 2, bottom at i_ref
            d_top = dev["tail_source.output"]
            d_bot = dev["tail_source.bottom"]
            gm_top = self._gm(d_top, geom[d_top.key][2], itail)
            g0 = 2.0 * (d_top.lam_eff * itail) * (d_bot.lam_eff * i_ref) / gm_top

        if self.diff_is_cmos:
            gml = self._gm(d_load, wl_load, id1)
            gdi = d_pair.lam_eff * id1
            cmrr = 2.0 * gm1 * gml / (g0 * gdi)
        else:
            cmrr = 2.0 * gm1 / g0

        # ---- second stage
        a2: Num = 1.0
        i6: Num = 0.0
        if self.two_stage:
            d_drv = dev["stage2.driver"]
            d_l2 = dev["stage2.load"]
            wl_drv = geom["stage2.driver"][2]
            wl_l2 = geom["stage2.load"][2]
            i6 = i_bias * (wl_l2 / self.bias_wl)
            lam_sum2 = d_drv.lam_eff + d_l2.lam_eff
            a2 = d_drv.gm_k * isqrt(2.0 * d_drv.kp * wl_drv / i6) / lam_sum2

        # ---- buffer
        a_buf: Num = 1.0
        i_buf: Num = 0.0
        if self.has_buffer:
            d_bdrv = dev["buffer.driver"]
            d_bsnk = dev["buffer.sink"]
            wl_bdrv = geom["buffer.driver"][2]
            wl_bsnk = geom["buffer.sink"][2]
            i_buf = i_bias * (wl_bsnk / self.bias_wl)
            gm_b = self._gm(d_bdrv, wl_bdrv, i_buf)
            g_tot = (
                gm_b * (1.0 + self.chi_buffer)
                + d_bdrv.lam_eff * i_buf
                + d_bsnk.lam_eff * i_buf
                + self.g_load
            )
            a_buf = gm_b / g_tot

        # ---- composition (mirrors design_opamp exactly)
        gain = a1 * a2 * a_buf
        if self.two_stage:
            ugf = a_buf * gm1 / (2.0 * math.pi * cc)
            slew = imin(itail / cc, i6 / self.cl)
        elif self.cc0 > 0:
            ugf = a_buf * gm1 / (2.0 * math.pi * cc)
            slew = itail / cc
        else:
            ugf = gm1 / (2.0 * math.pi * self.cl)
            slew = itail / self.cl
        cmrr_total = cmrr if self.diff_is_cmos else cmrr * a2

        total_current = i_ref + itail + i6 + i_bias + i_buf
        dc_power = self.span * total_current

        area: Num = self.bias_area
        for key, d in dev.items():
            w, l, _ = geom[key]
            area = area + float(d.count) * (w * l)

        return {
            "gain": gain,
            "ugf": ugf,
            "slew_rate": slew,
            "dc_power": dc_power,
            "gate_area": area,
            "i_ref": i_ref,
            "cmrr": cmrr_total,
        }

    def bounds(self, box: Mapping[str, tuple[float, float]]) -> dict[str, Interval]:
        """Guaranteed metric intervals over a parameter box."""
        values: dict[str, Num] = {
            name: Interval(lo, hi) for name, (lo, hi) in box.items()
        }
        return {
            name: Interval.coerce(value)
            for name, value in self.evaluate(values).items()
        }
