"""Topology pre-screen: rank structural choices by static feasibility.

ROADMAP item 4 wants topology search pruned by APE feasibility before
any annealing budget is spent.  :func:`screen_topologies` runs the
interval analysis (:func:`~repro.analysis.core.analyze_problem`) for
each candidate :class:`~repro.opamp.topology.OpAmpTopology` and returns
verdicts ordered best-first: provably infeasible candidates sink to the
bottom so a search loop can simply stop at the first rejected entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .core import AnalysisReport, analyze_problem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..opamp.topology import OpAmpSpec, OpAmpTopology
    from ..synthesis.specs import SynthesisSpec
    from ..technology import Technology

__all__ = ["TopologyVerdict", "default_topology_choices", "screen_topologies"]


@dataclass(frozen=True)
class TopologyVerdict:
    """One screened candidate with its analysis report."""

    topology: "OpAmpTopology"
    report: AnalysisReport

    @property
    def feasible(self) -> bool:
        return self.report.feasible

    @property
    def label(self) -> str:
        t = self.topology
        parts = [t.current_source, t.diff_pair]
        if t.gain_stage:
            parts.append("2stage")
        if t.output_buffer:
            parts.append("buffer")
        return "+".join(parts)

    def to_dict(self) -> dict[str, object]:
        t = self.topology
        return {
            "topology": {
                "current_source": t.current_source,
                "diff_pair": t.diff_pair,
                "gain_stage": t.gain_stage,
                "output_buffer": t.output_buffer,
                "z_load": t.z_load if t.z_load != float("inf") else "inf",
                "compensated": t.compensated,
            },
            "label": self.label,
            "feasible": self.feasible,
            "error_codes": list(self.report.error_codes),
            "report": self.report.to_dict(),
        }


def default_topology_choices() -> list["OpAmpTopology"]:
    """The screened structural catalog: tail source x diff-pair type.

    The folded-cascode diff stage is outside the closed-form interval
    model (its verdict would be vacuous), so it is not enumerated here;
    ``gain_stage=None`` lets the estimator pick per the gain target.
    """
    from ..opamp.topology import OpAmpTopology

    choices: list["OpAmpTopology"] = []
    for current_source in ("mirror", "wilson", "cascode"):
        for diff_pair in ("cmos", "nmos"):
            choices.append(
                OpAmpTopology(
                    current_source=current_source, diff_pair=diff_pair
                )
            )
    return choices


def screen_topologies(
    tech: "Technology",
    spec: "OpAmpSpec",
    topologies: Sequence["OpAmpTopology"] | None = None,
    *,
    synthesis_spec: "SynthesisSpec | None" = None,
    mode: str = "ape",
    range_factor: float = 0.2,
    name: str = "opamp",
) -> list[TopologyVerdict]:
    """Analyze each candidate topology; verdicts ordered best-first.

    Feasible candidates come first (fewest warnings wins ties, then
    catalog order for determinism); provably infeasible ones follow,
    most-violated last.  Box contraction is skipped — the screen only
    needs verdicts, and the per-candidate cost stays a few interval
    evaluations.
    """
    candidates = (
        list(topologies) if topologies is not None else default_topology_choices()
    )
    verdicts: list[TopologyVerdict] = []
    for index, topology in enumerate(candidates):
        report = analyze_problem(
            tech,
            spec,
            topology,
            synthesis_spec,
            mode=mode,
            range_factor=range_factor,
            contract=False,
            name=f"{name}.t{index}",
        )
        verdicts.append(TopologyVerdict(topology=topology, report=report))

    order = {id(v): i for i, v in enumerate(verdicts)}
    verdicts.sort(
        key=lambda v: (
            not v.feasible,
            v.report.counts()["error"],
            v.report.counts()["warning"],
            order[id(v)],
        )
    )
    return verdicts
