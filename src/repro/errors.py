"""Exception hierarchy for the APE reproduction library.

Every error raised by this package derives from :class:`ApeError`, so
callers can catch one type at the API boundary.  The subtypes mirror the
major subsystems: unit parsing, technology data, device sizing, circuit
simulation and synthesis.

:class:`ApeError` carries a structured ``context`` dict so raise sites
can attach (component, parameter, value) payloads once instead of
string-formatting them into the message; the runtime's diagnostics
layer (:mod:`repro.runtime.diagnostics`) lifts the same payload into
:class:`~repro.runtime.diagnostics.Diagnostic` records.
"""

from __future__ import annotations


class ApeError(Exception):
    """Base class for all errors raised by this package.

    ``context`` is an optional structured payload rendered into
    ``str(error)`` as ``message [key=value, ...]``.
    """

    def __init__(self, *args: object, context: dict | None = None) -> None:
        super().__init__(*args)
        self.context: dict = dict(context or {})

    def with_context(self, **entries: object) -> "ApeError":
        """Attach more context in-flight; returns ``self`` for re-raise."""
        self.context.update(entries)
        return self

    def __str__(self) -> str:
        message = super().__str__()
        if not self.context:
            return message
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.context.items())
        return f"{message} [{rendered}]" if message else f"[{rendered}]"


class UnitError(ApeError, ValueError):
    """A quantity string could not be parsed (e.g. ``'1.3Qz'``)."""


class TechnologyError(ApeError):
    """Missing or inconsistent technology process data."""


class ModelCardError(TechnologyError):
    """A SPICE ``.MODEL`` card could not be parsed."""


class SizingError(ApeError):
    """Analytical device sizing failed (infeasible spec, bad region)."""


class EstimationError(ApeError):
    """A performance estimate could not be produced for a component."""


class TopologyError(ApeError):
    """An unknown or inconsistent circuit topology was requested."""


class NetlistError(ApeError):
    """Malformed netlist: dangling nodes, duplicate names, bad values."""


class SimulationError(ApeError):
    """The circuit simulator failed (singular matrix, no convergence)."""


class ConvergenceError(SimulationError):
    """Newton iteration did not converge for the DC operating point."""


class SynthesisError(ApeError):
    """The optimization-based sizing engine failed to produce a result."""


class SpecificationError(SynthesisError):
    """A synthesis specification is malformed or self-contradictory."""


class BudgetExhausted(ApeError):
    """A strict-mode run ran out of its evaluation/wall-clock budget."""
