"""Op-amp netlist generation and verification benches.

``place_opamp`` stamps a sized :class:`~repro.opamp.estimator.OpAmp`
into a circuit — bias distribution, tail source, differential stage,
common-source stage with Miller compensation, buffer — and the bench
builders wrap it with stimuli.  :func:`verify_opamp` runs the full
measurement suite (the "sim" columns of the paper's Tables 1, 3, 4).
"""

from __future__ import annotations

import math

from ..components import (
    CascodeCurrentSource,
    CurrentMirror,
    WilsonCurrentSource,
)
from ..components.current_sources import DEFAULT_MIRROR_VOV
from ..devices import size_for_id_vov
from ..errors import EstimationError, SimulationError
from ..spice import (
    Circuit,
    PulseWave,
    ac_analysis,
    balance_differential,
    gain_at,
    measure_output_impedance,
    measure_slew_rate,
    transient_analysis,
    unity_gain_frequency,
)
from ..spice.ac import log_frequencies
from .estimator import OpAmp, SINK_BIAS_CURRENT

__all__ = [
    "place_opamp",
    "open_loop_bench",
    "balanced_open_loop",
    "cmrr_benches",
    "step_bench",
    "verify_opamp",
]


def _tail_ref_voltage(opamp: OpAmp) -> float:
    """DC level of the tail source's reference node above VSS."""
    tail = opamp.stages["tail_source"]
    tech = opamp.tech
    if isinstance(tail, CurrentMirror):
        return tech.vss + tail.devices["input"].op.vgs
    if isinstance(tail, CascodeCurrentSource):
        return (
            tech.vss
            + tail.devices["input_bottom"].op.vgs
            + tail.devices["input_top"].op.vgs
        )
    if isinstance(tail, WilsonCurrentSource):
        return (
            tech.vss
            + tail.devices["diode"].op.vgs
            + tail.devices["output"].op.vgs
        )
    raise EstimationError(f"unknown tail source type {type(tail).__name__}")


def place_opamp(
    opamp: OpAmp,
    circuit: Circuit,
    prefix: str,
    *,
    inp: str,
    inn: str,
    out: str,
    vdd: str,
    vss: str,
) -> None:
    """Stamp the complete amplifier between the given nodes."""
    tech = opamp.tech
    nbias_a = f"{prefix}_nbias_a"
    tail = f"{prefix}_tail"

    # Bias branch A: resistor-programmed reference for the tail source.
    if opamp.r_ref > 0:
        r_ref = opamp.r_ref
    else:  # fall back to the template computation (pre-1.0 objects)
        v_ref = _tail_ref_voltage(opamp)
        r_ref = (tech.vdd - v_ref) / opamp.currents["tail_ref"]
    circuit.r(vdd, nbias_a, r_ref, name=f"{prefix}RREF")
    opamp.stages["tail_source"].place(
        circuit, f"{prefix}TS", ref=nbias_a, out=tail, rail=vss
    )

    # Differential stage.
    diff = opamp.stages["diff"]
    two_stage = opamp.two_stage
    if two_stage:
        d1 = f"{prefix}_d1"
        n2 = f"{prefix}_n2" if opamp.has_buffer else out
    else:
        d1 = f"{prefix}_d1" if opamp.has_buffer else out
        n2 = d1
    # Keep `inp` the non-inverting input of the whole amplifier: the
    # common-source second stage inverts, so a two-stage signal path
    # needs the differential inputs swapped at the pair.
    eff_inp, eff_inn = (inn, inp) if two_stage else (inp, inn)
    if type(diff).__name__ == "FoldedCascodeDiff":
        # The fold's internal bias rails are generated as ideal sources
        # (a real design would add a bias-distribution ladder; the
        # estimate accounts its branches in the power figure).
        bp, bpc, bnc = (
            f"{prefix}_vbp", f"{prefix}_vbpc", f"{prefix}_vbnc",
        )
        circuit.v(bp, "0", dc=diff.v_bias_p, name=f"{prefix}VBP")
        circuit.v(bpc, "0", dc=diff.v_bias_pc, name=f"{prefix}VBPC")
        circuit.v(bnc, "0", dc=diff.v_bias_nc, name=f"{prefix}VBNC")
        diff.place(
            circuit, f"{prefix}DF",
            inp=eff_inp, inn=eff_inn, out=d1, tail=tail,
            vdd=vdd, vss=vss, bias_p=bp, bias_pc=bpc, bias_nc=bnc,
        )
    elif type(diff).__name__ == "DiffNmos":
        # Each diode-loaded side inverts; the single-ended pick-off at
        # ``outp`` (driven by the inn-side device) plus the stage-2
        # inversion makes ``inp`` non-inverting with the swap above.
        outn = f"{prefix}_d1n"
        diff.place(
            circuit, f"{prefix}DF",
            inp=eff_inp, inn=eff_inn, outp=d1, outn=outn,
            tail=tail, vdd=vdd, vss=vss,
        )
    else:
        diff.place(
            circuit, f"{prefix}DF",
            inp=eff_inp, inn=eff_inn, out=d1, tail=tail, vdd=vdd, vss=vss,
        )

    # Bias branch B: diode reference for the stage-2/buffer sinks.
    needs_sink_bias = "sink_bias" in opamp.currents
    nbias_b = f"{prefix}_nbias_b"
    if needs_sink_bias:
        bias_diode = size_for_id_vov(
            tech.nmos, tech, ids=SINK_BIAS_CURRENT, vov=DEFAULT_MIRROR_VOV
        )
        if opamp.r_bias > 0:
            r_b = opamp.r_bias
        else:
            v_ref_b = tech.vss + bias_diode.op.vgs
            r_b = (tech.vdd - v_ref_b) / SINK_BIAS_CURRENT
        circuit.r(vdd, nbias_b, r_b, name=f"{prefix}RBIASB")
        circuit.m(
            nbias_b, nbias_b, vss, vss,
            bias_diode.device.model, bias_diode.w, bias_diode.l,
            name=f"{prefix}MBIASB",
        )

    # Single-stage behind a buffer: dominant-pole capacitor at the
    # high-impedance diff output.
    if not two_stage and opamp.cc > 0:
        circuit.c(d1, vss, opamp.cc, name=f"{prefix}CCOMP")

    # Second stage with Miller compensation.
    if two_stage:
        stage2 = opamp.stages["stage2"]
        stage2.place(
            circuit, f"{prefix}S2",
            **{"in": d1, "out": n2, "bias_load": nbias_b,
               "vdd": vdd, "vss": vss},
        )
        if opamp.cc > 0:
            ncomp = f"{prefix}_comp"
            circuit.r(n2, ncomp, max(opamp.rz, 1e-3), name=f"{prefix}RZ")
            circuit.c(ncomp, d1, opamp.cc, name=f"{prefix}CC")

    # Output buffer.
    if opamp.has_buffer:
        opamp.stages["buffer"].place(
            circuit, f"{prefix}BF",
            **{"in": n2, "out": out, "bias": nbias_b, "vdd": vdd, "vss": vss},
        )


def _bench_shell(opamp: OpAmp, title: str) -> Circuit:
    ckt = Circuit(title)
    ckt.v("vdd", "0", dc=opamp.tech.vdd, name="VDDSUP")
    ckt.v("vss", "0", dc=opamp.tech.vss, name="VSSSUP")
    return ckt


def _attach_loads(opamp: OpAmp, ckt: Circuit) -> None:
    ckt.c("out", "0", opamp.spec.cl, name="CLOAD")
    if math.isfinite(opamp.topology.z_load):
        ckt.r("out", "0", opamp.topology.z_load, name="RLOAD")


def open_loop_bench(
    opamp: OpAmp,
    v_diff: float = 0.0,
    ac_mode: str = "differential",
    v_cm: float = 0.0,
) -> Circuit:
    """Open-loop bench: differential or common-mode AC drive.

    ``v_diff`` is the DC differential offset applied around the common
    mode ``v_cm`` (used by the balancing search).
    """
    if ac_mode not in ("differential", "common", "none"):
        raise SimulationError(f"unknown ac_mode {ac_mode!r}")
    acp, acn = {
        "differential": (0.5, -0.5),
        "common": (1.0, 1.0),
        "none": (0.0, 0.0),
    }[ac_mode]
    ckt = _bench_shell(opamp, f"{opamp.name}-openloop-{ac_mode}")
    ckt.v("inp", "0", dc=v_cm + v_diff / 2.0, ac=acp, name="VINP")
    ckt.v("inn", "0", dc=v_cm - v_diff / 2.0, ac=acn, name="VINN")
    place_opamp(
        opamp, ckt, "X1", inp="inp", inn="inn", out="out", vdd="vdd", vss="vss"
    )
    _attach_loads(opamp, ckt)
    return ckt


def balanced_open_loop(opamp: OpAmp, target: float = 0.0):
    """Find the input offset centring the output; returns (vofs, ckt, op)."""
    return balance_differential(
        lambda v: open_loop_bench(opamp, v_diff=v),
        "out",
        target=target,
        v_span=0.5,
    )


def cmrr_benches(opamp: OpAmp, v_diff: float) -> tuple[Circuit, Circuit]:
    """Matched differential / common-mode benches at a balanced offset."""
    return (
        open_loop_bench(opamp, v_diff=v_diff, ac_mode="differential"),
        open_loop_bench(opamp, v_diff=v_diff, ac_mode="common"),
    )


def step_bench(
    opamp: OpAmp, step: float = 0.5, t_delay: float = 1e-7
) -> Circuit:
    """Unity-gain follower driven by a voltage step (slew-rate bench)."""
    ckt = _bench_shell(opamp, f"{opamp.name}-step")
    ckt.v(
        "inp", "0", dc=-step / 2.0,
        wave=PulseWave(
            v1=-step / 2.0, v2=step / 2.0, delay=t_delay,
            rise=1e-9, width=1.0,
        ),
        name="VINP",
    )
    # Unity-gain: the inverting input *is* the output node.
    place_opamp(
        opamp, ckt, "X1", inp="inp", inn="out", out="out", vdd="vdd", vss="vss"
    )
    _attach_loads(opamp, ckt)
    return ckt


def verify_opamp(
    opamp: OpAmp,
    *,
    measure_slew: bool = True,
    measure_zout: bool = True,
    measure_cmrr: bool = False,
) -> dict[str, float]:
    """Full-simulation measurement of a sized op-amp.

    Returns the "sim" counterparts of the paper's table columns:
    ``gain``, ``ugf``, ``dc_power``, ``gate_area``, plus optionally
    ``zout``, ``slew_rate`` and ``cmrr``.  Raises
    :class:`~repro.errors.SimulationError` when the amplifier cannot be
    biased or never crosses unity gain.
    """
    v_ofs, ckt, op = balanced_open_loop(opamp)
    f_hi = max(opamp.estimate.ugf * 30.0, 1e6)
    ac = ac_analysis(ckt, op=op, frequencies=log_frequencies(1.0, f_hi, 20))
    mag = ac.magnitude("out")
    results: dict[str, float] = {
        "gain": float(mag[0]),
        "ugf": unity_gain_frequency(ac, "out"),
        "input_offset": v_ofs,
    }
    # Power from the supply branch currents at the balanced OP.
    i_vdd = -op.i("VDDSUP")
    i_vss = -op.i("VSSSUP")
    results["dc_power"] = opamp.tech.vdd * i_vdd + opamp.tech.vss * i_vss
    results["gate_area"] = ckt.total_gate_area()
    if measure_zout:
        quiet = open_loop_bench(opamp, v_diff=v_ofs, ac_mode="none")
        results["zout"] = measure_output_impedance(quiet, "out", frequency=1e3)
    if measure_cmrr:
        bench_d, bench_c = cmrr_benches(opamp, v_ofs)
        adm = gain_at(bench_d, "out", 10.0)
        acm = gain_at(bench_c, "out", 10.0)
        results["cmrr"] = adm / max(acm, 1e-18)
    if measure_slew:
        t_unit = 1.0 / opamp.estimate.ugf
        bench = step_bench(opamp, step=0.5, t_delay=5 * t_unit)
        tran = transient_analysis(
            bench, t_stop=60 * t_unit, dt=t_unit / 4.0
        )
        results["slew_rate"] = measure_slew_rate(
            tran, "out", t_start=5 * t_unit, t_stop=40 * t_unit
        )
    return results
