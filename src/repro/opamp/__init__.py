"""Operational amplifiers (APE level 3, paper §4.3).

"A general structure of an opamp can be represented by three stages:
(1) differential input amplifier; (2) level shift, differential to
single-ended converter, and gain stage; (3) output buffer" — each stage
drawn from the level-2 library.

:class:`OpAmpTopology` captures the paper's topology knobs (bias
current, current-source type, diff-amp type, gain stage, output buffer,
load, compensation); :func:`design_opamp` sizes a complete amplifier
and composes its performance estimate; :mod:`repro.opamp.benches`
builds the simulation benches the tables verify against.
"""

from .topology import OpAmpSpec, OpAmpTopology
from .estimator import OpAmp, coarse_design_opamp, design_opamp
from .benches import (
    balanced_open_loop,
    cmrr_benches,
    open_loop_bench,
    step_bench,
    verify_opamp,
)

__all__ = [
    "OpAmpSpec",
    "OpAmpTopology",
    "OpAmp",
    "design_opamp",
    "coarse_design_opamp",
    "open_loop_bench",
    "balanced_open_loop",
    "cmrr_benches",
    "step_bench",
    "verify_opamp",
]
