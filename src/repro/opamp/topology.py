"""Op-amp specification and topology records.

These mirror the paper's Table 1 columns: a *specification* (gain, UGF,
area, bias current, load) and a *topology* (current-source type,
differential-amplifier type, buffer present, output load impedance,
compensation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpecificationError

__all__ = ["OpAmpSpec", "OpAmpTopology"]


@dataclass(frozen=True)
class OpAmpSpec:
    """Performance targets for an op-amp (paper Table 1, left side)."""

    #: Required low-frequency differential gain (absolute ratio).
    gain: float
    #: Required unity-gain frequency [Hz].
    ugf: float
    #: Gate-area budget [m^2] (advisory; reported, not enforced).
    area: float = math.inf
    #: Nominal bias (tail) current [A].
    ibias: float = 1e-6
    #: Load capacitance [F].
    cl: float = 10e-12
    #: Required slew rate [V/s] (0 = unconstrained).
    slew_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise SpecificationError("gain must be positive")
        if self.ugf <= 0:
            raise SpecificationError("UGF must be positive")
        if self.ibias <= 0:
            raise SpecificationError("ibias must be positive")
        if self.cl <= 0:
            raise SpecificationError("load capacitance must be positive")
        if self.slew_rate < 0:
            raise SpecificationError("slew rate cannot be negative")


@dataclass(frozen=True)
class OpAmpTopology:
    """Structural choices (paper Table 1: CurrSrc/Diffgain/Buff/Z)."""

    #: Tail current source: 'mirror', 'wilson' or 'cascode'.
    current_source: str = "mirror"
    #: Differential stage: 'cmos' (mirror load), 'nmos' (diode load) or
    #: 'folded' (folded-cascode, high single-stage gain).
    diff_pair: str = "cmos"
    #: Second (common-source) gain stage: True/False, or None = choose
    #: automatically from the gain requirement.
    gain_stage: bool | None = None
    #: Source-follower output buffer.
    output_buffer: bool = False
    #: Resistive load the buffer must drive [ohm] (inf = capacitive only).
    z_load: float = math.inf
    #: Miller compensation across the second stage.
    compensated: bool = True

    def __post_init__(self) -> None:
        if self.current_source.lower() not in ("mirror", "wilson", "cascode"):
            raise SpecificationError(
                f"unknown current source {self.current_source!r}"
            )
        if self.diff_pair.lower() not in ("cmos", "nmos", "folded"):
            raise SpecificationError(f"unknown diff pair {self.diff_pair!r}")
        if self.diff_pair.lower() == "folded" and self.gain_stage:
            raise SpecificationError(
                "the folded-cascode stage is single-stage by construction; "
                "do not combine it with gain_stage=True"
            )
        if self.z_load <= 0:
            raise SpecificationError("z_load must be positive")
        if self.output_buffer and math.isinf(self.z_load):
            # A buffer with no resistive load is allowed but pointless;
            # keep it legal for the paper's oa9 (Z = 10 k, buffer).
            pass

    @property
    def describes_two_stage(self) -> bool | None:
        """True/False when fixed; None when gain_stage is automatic."""
        return self.gain_stage
