"""Op-amp sizing and performance composition (the APE core algorithm).

Given an :class:`~repro.opamp.topology.OpAmpSpec` and an
:class:`~repro.opamp.topology.OpAmpTopology`, :func:`design_opamp`
walks the hierarchy bottom-up exactly as the paper describes: the tail
current source is sized first (its output conductance feeds the
differential-stage equations), then the differential stage, the
common-source gain stage, the output buffer, and finally the composed
performance estimate, with every transistor sized along the way.

Design rules encoded here (classic two-stage Miller practice):

* Miller capacitor ``Cc >= 0.22 CL`` (right-half-plane zero nulled by a
  series resistor ``Rz = 1/gm6``),
* ``gm6 >= 10 gm1`` for phase margin,
* first-stage overdrive picked to satisfy *both* the UGF (through
  ``gm1 = 2 pi UGF Cc``) and the gain split.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..components import (
    Component,
    DiffCmos,
    DiffNmos,
    GainCmos,
    PerformanceEstimate,
    SourceFollower,
    current_source_by_name,
)
from ..components.current_sources import DEFAULT_MIRROR_VOV
from ..devices.sizing import MIN_OVERDRIVE
from ..errors import EstimationError
from ..runtime import faults
from ..runtime.diagnostics import Diagnostic
from ..technology import MosPolarity, Technology
from .topology import OpAmpSpec, OpAmpTopology

__all__ = ["OpAmp", "design_opamp", "coarse_design_opamp"]

#: Compensation capacitor floor relative to the load (stability rule).
CC_OVER_CL = 0.22
#: Phase-margin rule: second-stage gm over first-stage gm.
GM6_OVER_GM1 = 10.0
#: Overdrive window for the input pair [V].
VOV1_MIN, VOV1_MAX = MIN_OVERDRIVE, 1.0
#: Overdrive window for the second-stage driver [V].
VOV6_MIN, VOV6_MAX = 0.08, 1.0
#: Current in the sink-bias distribution branch [A].
SINK_BIAS_CURRENT = 10e-6


@dataclass
class OpAmp(Component):
    """A fully sized operational amplifier with composed estimates.

    ``stages`` holds the level-2 sub-components by role
    (``'tail_source'``, ``'diff'``, ``'stage2'``, ``'buffer'``);
    ``currents`` the branch currents by name.  The netlist/bench
    machinery lives in :mod:`repro.opamp.benches`.
    """

    spec: OpAmpSpec = None  # type: ignore[assignment]
    topology: OpAmpTopology = None  # type: ignore[assignment]
    stages: dict[str, Component] = field(default_factory=dict)
    currents: dict[str, float] = field(default_factory=dict)
    #: Miller capacitor [F] (0 when single-stage).
    cc: float = 0.0
    #: Zero-nulling resistor in series with Cc [ohm].
    rz: float = 0.0
    #: Bias-programming resistors [ohm] (0 = absent).  These are part
    #: of the design point: ASTRX/OBLX treats bias values as unknowns.
    r_ref: float = 0.0
    r_bias: float = 0.0

    @property
    def two_stage(self) -> bool:
        return "stage2" in self.stages

    @property
    def has_buffer(self) -> bool:
        return "buffer" in self.stages

    def total_current(self) -> float:
        """Sum of all branch currents [A]."""
        return sum(self.currents.values())

    def stage(self, role: str) -> Component:
        try:
            return self.stages[role]
        except KeyError:
            raise EstimationError(
                f"{self.name}: no stage {role!r}; have "
                f"{', '.join(sorted(self.stages))}"
            ) from None

    def initial_point(self) -> dict[str, float]:
        """Flat parameter dict for seeding a synthesis engine.

        Keys are ``<stage>.<role>.w`` / ``.l`` in metres plus the
        compensation values — the "initial design point" the paper
        feeds to ASTRX/OBLX.
        """
        point: dict[str, float] = {}
        for stage_name, stage in self.stages.items():
            for role, dev in stage.devices.items():
                point[f"{stage_name}.{role}.w"] = dev.w
                point[f"{stage_name}.{role}.l"] = dev.l
        if self.cc > 0:
            point["cc"] = self.cc
        if self.r_ref > 0:
            point["r.ref"] = self.r_ref
        if self.r_bias > 0:
            point["r.bias"] = self.r_bias
        for branch, value in self.currents.items():
            point[f"i.{branch}"] = value
        return point


def _clamp(value: float, lo: float, hi: float) -> float:
    return min(max(value, lo), hi)


def design_opamp(
    tech: Technology,
    spec: OpAmpSpec,
    topology: OpAmpTopology | None = None,
    name: str = "opamp",
) -> OpAmp:
    """Size a complete op-amp and estimate its performance.

    Follows the paper's bottom-up flow; raises
    :class:`~repro.errors.EstimationError` when the specification is
    infeasible for the chosen topology (e.g. more gain than two stages
    can deliver in this technology).
    """
    faults.check("estimator.opamp")
    if topology is None:
        topology = OpAmpTopology()
    lam_sum = tech.nmos.lambda_ + tech.pmos.lambda_
    a1_max = 2.0 / (VOV1_MIN * lam_sum)
    a2_max = 2.0 / (VOV6_MIN * lam_sum)

    # ------------------------------------------------------------- buffer
    buffer: SourceFollower | None = None
    a_buf = 1.0
    i_buf = 0.0
    if topology.output_buffer:
        if math.isfinite(topology.z_load):
            gm_buf = 2.0 / topology.z_load
        else:
            gm_buf = 2.0 / 10e3  # default drive strength
        i_buf = max(
            gm_buf * DEFAULT_MIRROR_VOV / 2.0,
            spec.slew_rate * spec.cl,
            5e-6,
        )
        buffer = SourceFollower.design(
            tech,
            current=i_buf,
            z_out=1.0 / gm_buf,
            r_load=topology.z_load,
            name=f"{name}.buffer",
        )
        a_buf = buffer.estimate.gain

    a_needed = spec.gain / a_buf
    diff_kind = topology.diff_pair.lower()
    diff_is_cmos = diff_kind == "cmos"
    diff_is_folded = diff_kind == "folded"

    # --------------------------------------------------- stage count choice
    if diff_is_folded:
        # The folded cascode is single-stage by construction; its gain
        # is set by the cascode structure, not the overdrive split.
        two_stage = False
    elif topology.gain_stage is None:
        # Single stage only when the mirror-loaded pair can reach the
        # gain comfortably AND doing so doesn't explode the tail current
        # (single-stage UGF needs gm1 = 2 pi f CL, ~5x the two-stage gm).
        # The paper's op-amps are single-stage (diff amp + optional
        # buffer) wherever the mirror-loaded pair can reach the gain;
        # the common-source stage is added only beyond that.  spec.ibias
        # is the *reference* current — the tail is a mirrored multiple —
        # so current headroom never forces the second stage.
        vov1_ss = 2.0 / (max(a_needed, 1.0) * lam_sum)
        single_ok = diff_is_cmos and 0.06 <= vov1_ss <= 1.2
        two_stage = not single_ok
    else:
        two_stage = topology.gain_stage
        if diff_kind == "nmos" and not two_stage:
            raise EstimationError(
                f"{name}: a diode-loaded (NMOS) differential stage needs "
                "the common-source stage for single-ended output"
            )
    if a_needed > a1_max * a2_max:
        raise EstimationError(
            f"{name}: gain {spec.gain:g} exceeds the two-stage limit "
            f"~{a1_max * a2_max:.0f} in {tech.name}"
        )

    # --------------------------------------------------------- first stage
    if two_stage:
        cc_min = CC_OVER_CL * spec.cl
        gm1_req = 2.0 * math.pi * spec.ugf * cc_min
        itail = spec.ibias
        vov1 = itail / gm1_req
        if vov1 < VOV1_MIN:
            # The spec current cannot make the UGF: raise the tail.
            itail = gm1_req * VOV1_MIN
            vov1 = VOV1_MIN
        # Keep the overdrive in the gain-friendly window; extra gm just
        # raises the UGF above spec, which is acceptable.
        vov1 = _clamp(vov1, VOV1_MIN, VOV1_MAX)
        gm1 = itail / vov1
        cc = max(gm1 / (2.0 * math.pi * spec.ugf), cc_min)
        a1_target = _clamp(2.0 / (vov1 * lam_sum), 1.0, a1_max)
        if not diff_is_cmos:
            # Diode loads cap the pair gain and the single-ended
            # pick-off halves it; the second stage covers the rest.
            a1_target = min(a1_target, 12.0)
            a1_for_split = a1_target / 2.0
        else:
            a1_for_split = a1_target
        a2_target = _clamp(a_needed / a1_for_split, 9.0, a2_max)
        # The second-stage overdrive and the first-stage load overdrive
        # MUST be the same value: the diff stage's output DC level is
        # VDD - (Vthp + load_vov) and the PMOS driver's required input
        # level is VDD - (Vthp + vov6) — equality eliminates systematic
        # offset (the classic two-stage alignment condition).  The
        # overdrive is also capped by saturation headroom: the stage-2
        # output rests at the buffer's Vgs (or mid-rail without one),
        # and the PMOS driver needs |Vds| >= vov6 there.  Clamp vov6,
        # then re-derive the stage-2 gain from it so the GainCmos
        # sizing reproduces vov6 exactly.
        n2_rest = buffer.devices["driver"].op.vgs if buffer is not None else 0.0
        vov6_max = max(tech.vdd - n2_rest - 0.15, VOV6_MIN)
        vov6 = _clamp(2.0 / (a2_target * lam_sum), VOV6_MIN, min(vov6_max, 2.2))
        a2_target = 2.0 / (vov6 * lam_sum)
    else:
        if not diff_is_folded and a_needed > a1_max:
            raise EstimationError(
                f"{name}: single-stage gain {a_needed:.0f} exceeds the "
                f"one-stage limit ~{a1_max:.0f}; enable the gain stage "
                "or use the folded-cascode pair"
            )
        if diff_is_folded:
            # Gain is structural; the overdrive is the mirror default
            # and only sets gm1 = Itail / vov1.
            vov1 = DEFAULT_MIRROR_VOV
            a1_target = a_needed
        else:
            vov1 = _clamp(2.0 / (a_needed * lam_sum), VOV1_MIN, 1.2)
            a1_target = 2.0 / (vov1 * lam_sum)
        if topology.output_buffer:
            # The buffer isolates CL, so the dominant pole is set by an
            # explicit compensation capacitor at the diff output; a
            # small value keeps the tail current (gm1 = 2 pi f Cc /
            # a_buf, itail = gm1 * vov1) low.
            cc = max(0.5e-12, 0.05 * spec.cl)
            gm1 = 2.0 * math.pi * (spec.ugf / a_buf) * cc
            itail = max(gm1 * vov1, spec.ibias)
            gm1 = itail / vov1
            # If the reference current floor raised gm1, grow Cc so the
            # UGF lands near (not far above) the spec.
            cc = max(cc, a_buf * gm1 / (2.0 * math.pi * spec.ugf * 1.5))
        else:
            cc = 0.0
            gm1 = 2.0 * math.pi * spec.ugf * spec.cl
            itail = max(gm1 * vov1, spec.ibias)
            gm1 = itail / vov1
        vov6 = DEFAULT_MIRROR_VOV
        a2_target = 1.0

    # ---------------------------------------------------------- tail source
    source_cls = current_source_by_name(topology.current_source)
    tail_source = source_cls.design(
        tech,
        current=itail,
        ratio=max(itail / spec.ibias, 1e-3),
        name=f"{name}.tail",
    )
    g0 = 1.0 / tail_source.estimate.zout

    # ----------------------------------------------------------- diff stage
    stage1_cl = cc if two_stage else spec.cl
    if diff_is_folded:
        from ..components.folded_cascode import FoldedCascodeDiff

        diff: Component = FoldedCascodeDiff.design(
            tech,
            adm=a1_target,
            tail_current=itail,
            cl=max(stage1_cl if cc > 0 else spec.cl, 1e-15),
            g0=g0,
            name=f"{name}.diff",
        )
        a1_actual = diff.estimate.gain
    elif diff_is_cmos:
        diff: Component = DiffCmos.design(
            tech,
            adm=a1_target,
            tail_current=itail,
            cl=max(stage1_cl, 1e-15),
            g0=g0,
            # Alignment: the load overdrive mirrors the second-stage
            # driver overdrive (see the vov6 derivation above).
            load_vov=vov6 if two_stage else DEFAULT_MIRROR_VOV,
            name=f"{name}.diff",
        )
        a1_actual = diff.estimate.gain
    else:
        diff = DiffNmos.design(
            tech,
            adm=-a1_target,
            tail_current=itail,
            cl=max(stage1_cl, 1e-15),
            g0=g0,
            name=f"{name}.diff",
        )
        # Single-ended pick-off halves the differential gain.
        a1_actual = abs(diff.estimate.gain) / 2.0

    gm1_actual = diff.devices["pair"].gm

    # ---------------------------------------------------------- second stage
    stage2: GainCmos | None = None
    i6 = 0.0
    if two_stage:
        gm6 = GM6_OVER_GM1 * gm1_actual
        i6 = max(gm6 * vov6 / 2.0, spec.slew_rate * spec.cl, itail)
        stage2 = GainCmos.design(
            tech,
            gain=-a2_target,
            current=i6,
            cl=spec.cl,
            driver_polarity=MosPolarity.PMOS,
            load_vov=DEFAULT_MIRROR_VOV,  # sink shares the nbias rail
            name=f"{name}.stage2",
        )

    # ------------------------------------------------------------- compose
    stages: dict[str, Component] = {"tail_source": tail_source, "diff": diff}
    if diff_is_folded:
        # The tail current is *re-used* by the fold: VDD supplies only
        # the two folding branches (each Itail/2 + Ibranch).
        currents = {
            "tail_ref": spec.ibias,
            "fold": 2.0 * (itail / 2.0 + diff.branch_current),
        }
    else:
        currents = {"tail_ref": spec.ibias, "tail": itail}
    a2_actual = 1.0
    rz = 0.0
    if stage2 is not None:
        stages["stage2"] = stage2
        a2_actual = abs(stage2.estimate.gain)
        gm6_actual = stage2.devices["driver"].gm
        rz = 1.0 / gm6_actual
        currents["stage2"] = i6
        currents["sink_bias"] = SINK_BIAS_CURRENT
    if buffer is not None:
        stages["buffer"] = buffer
        currents["buffer"] = i_buf
        currents.setdefault("sink_bias", SINK_BIAS_CURRENT)

    gain_total = a1_actual * a2_actual * a_buf
    # The unity crossing is observed at the (possibly buffered) output,
    # so the buffer's sub-unity gain scales the effective UGF.
    if two_stage:
        ugf = a_buf * gm1_actual / (2.0 * math.pi * cc)
        slew = min(itail / cc, i6 / spec.cl)
    elif cc > 0:  # single stage behind a buffer: Cc at the diff output
        ugf = a_buf * gm1_actual / (2.0 * math.pi * cc)
        slew = itail / cc
    else:
        ugf = gm1_actual / (2.0 * math.pi * spec.cl)
        slew = itail / spec.cl
    if buffer is not None:
        zout = buffer.estimate.zout
    elif stage2 is not None:
        zout = stage2.estimate.zout
    else:
        zout = diff.estimate.zout
    total_current = sum(currents.values())
    # Use each stage's own estimate (the differential stage counts its
    # matched pairs twice; the raw role->device sum would not).
    gate_area = sum(s.estimate.gate_area for s in stages.values())
    # Bias-programming resistors: reference branch for the tail source
    # and (when present) the sink-bias diode branch.
    from ..components import CascodeCurrentSource, WilsonCurrentSource

    if isinstance(tail_source, WilsonCurrentSource):
        v_tail_ref = (
            tech.vss
            + tail_source.devices["diode"].op.vgs
            + tail_source.devices["output"].op.vgs
        )
    elif isinstance(tail_source, CascodeCurrentSource):
        v_tail_ref = (
            tech.vss
            + tail_source.devices["input_bottom"].op.vgs
            + tail_source.devices["input_top"].op.vgs
        )
    else:
        v_tail_ref = tech.vss + tail_source.devices["input"].op.vgs
    r_ref = (tech.vdd - v_tail_ref) / spec.ibias
    r_bias = 0.0
    if "sink_bias" in currents:
        # One diode device in the sink-bias branch, mirror-vov sized.
        from ..devices import size_for_id_vov

        bias_diode = size_for_id_vov(
            tech.nmos, tech, ids=SINK_BIAS_CURRENT, vov=DEFAULT_MIRROR_VOV
        )
        gate_area += bias_diode.gate_area
        r_bias = (tech.vdd - (tech.vss + bias_diode.op.vgs)) / SINK_BIAS_CURRENT
    estimate = PerformanceEstimate(
        gate_area=gate_area,
        dc_power=tech.supply_span * total_current,
        gain=gain_total,
        ugf=ugf,
        bandwidth=ugf / max(gain_total, 1.0),
        current=itail,
        zout=zout,
        cmrr=diff.estimate.cmrr * (a2_actual if not diff_is_cmos else 1.0),
        slew_rate=slew,
        acm=diff.estimate.acm,
        extras={
            "cc": cc,
            "rz": rz,
            "a1": a1_actual,
            "a2": a2_actual,
            "a_buf": a_buf,
            "cl": spec.cl,
            "cap_area": tech.capacitor_area(cc) if cc > 0 else 0.0,
        },
    )
    devices = {
        f"{stage_name}.{role}": dev
        for stage_name, stage in stages.items()
        for role, dev in stage.devices.items()
    }
    return OpAmp(
        name=name,
        tech=tech,
        devices=devices,
        estimate=estimate,
        spec=spec,
        topology=topology,
        stages=stages,
        currents=currents,
        cc=cc,
        rz=rz,
        r_ref=r_ref,
        r_bias=r_bias,
    )


def coarse_design_opamp(
    tech: Technology,
    spec: OpAmpSpec,
    topology: OpAmpTopology | None = None,
    name: str = "opamp",
    *,
    max_gain_halvings: int = 6,
) -> tuple[OpAmp, list[Diagnostic]]:
    """Graceful-degradation wrapper around :func:`design_opamp`.

    When the exact sizing raises :class:`EstimationError`, walk a
    relaxation ladder — retry unchanged (covers transient failures),
    enable the common-source gain stage, then repeatedly halve the gain
    target — and return the first coarser estimate that sizes, together
    with the :class:`Diagnostic` records describing every relaxation.
    Re-raises only when the whole ladder fails.
    """
    from dataclasses import replace as _replace

    diagnostics: list[Diagnostic] = []
    try:
        return design_opamp(tech, spec, topology, name=name), diagnostics
    except EstimationError as first_exc:
        diagnostics.append(
            Diagnostic.from_exception(
                "estimator.opamp",
                first_exc,
                severity="warning",
                suggested_fix=(
                    "exact sizing infeasible; a coarser analytical "
                    "estimate will be substituted"
                ),
                context={"component": name, "gain": spec.gain},
            )
        )
    attempts: list[tuple[str, OpAmpSpec, OpAmpTopology | None]] = []
    attempts.append(("retry unchanged", spec, topology))
    base_topology = topology or OpAmpTopology()
    # The folded-cascode stage is single-stage by construction, so the
    # gain-stage relaxation only applies to the other diff pairs.
    foldable = base_topology.diff_pair.lower() != "folded"
    relaxed_topology = (
        _replace(base_topology, gain_stage=True) if foldable else base_topology
    )
    if foldable and base_topology.gain_stage is not True:
        attempts.append(
            ("enable the common-source gain stage", spec, relaxed_topology)
        )
    gain = spec.gain
    for _ in range(max_gain_halvings):
        gain = gain / 2.0
        attempts.append(
            (
                f"halve the gain target to {gain:g}",
                _replace(spec, gain=gain),
                relaxed_topology,
            )
        )
    last_exc: EstimationError | None = None
    for description, attempt_spec, attempt_topology in attempts:
        try:
            amp = design_opamp(tech, attempt_spec, attempt_topology, name=name)
        except EstimationError as exc:
            last_exc = exc
            continue
        diagnostics.append(
            Diagnostic(
                subsystem="estimator.opamp",
                severity="warning",
                message=f"{name}: degraded estimate after: {description}",
                suggested_fix=(
                    "reduce the gain specification, pick a higher-gain "
                    "topology (folded cascode), or use a longer-channel "
                    "technology"
                ),
                context={
                    "component": name,
                    "requested_gain": spec.gain,
                    "delivered_gain": attempt_spec.gain,
                },
            )
        )
        return amp, diagnostics
    raise last_exc if last_exc is not None else EstimationError(
        f"{name}: relaxation ladder produced no attempts",
        context={"component": name},
    )
