"""Shared workload definitions for the paper-table benchmarks.

The specs below are transcribed from the paper: Table 1's ten op-amps
(left side) and Table 5's five analog modules.  Each benchmark file
regenerates one table; this module holds the inputs so every bench
reads the same workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.opamp import OpAmpSpec, OpAmpTopology

__all__ = ["Table1Row", "TABLE1", "SYNTH_BUDGET", "MODULE_BUDGET", "fmt"]

#: Annealing evaluation budget shared by both legs (fairness).
SYNTH_BUDGET = 150
#: Evaluation budget for module-level synthesis (heavier per eval).
MODULE_BUDGET = 60


@dataclass(frozen=True)
class Table1Row:
    """One op-amp specification row of paper Table 1."""

    name: str
    gain: float
    ugf: float
    area: float  # [m^2]
    ibias: float
    curr_src: str
    buffer: bool
    z_load: float
    cl: float = 10e-12

    def spec(self) -> OpAmpSpec:
        return OpAmpSpec(
            gain=self.gain,
            ugf=self.ugf,
            area=self.area,
            ibias=self.ibias,
            cl=self.cl,
        )

    def topology(self) -> OpAmpTopology:
        return OpAmpTopology(
            current_source=self.curr_src,
            diff_pair="cmos",
            output_buffer=self.buffer,
            z_load=self.z_load,
        )


# Paper Table 1 (left side). Areas are in um^2 in the paper.
TABLE1: list[Table1Row] = [
    Table1Row("oa0", 200, 1.3e6, 5000e-12, 1.0e-6, "wilson", True, 1e3),
    Table1Row("oa1", 70, 3.0e6, 3000e-12, 2.0e-6, "wilson", True, 1e3),
    Table1Row("oa2", 100, 2.5e6, 2000e-12, 1.5e-6, "wilson", True, 2e3),
    Table1Row("oa3", 250, 8.0e6, 1000e-12, 1.0e-6, "mirror", False, math.inf),
    Table1Row("oa4", 150, 3.0e6, 1000e-12, 100e-6, "mirror", False, math.inf),
    Table1Row("oa5", 200, 8.0e6, 5000e-12, 10e-6, "mirror", False, math.inf),
    Table1Row("oa6", 50, 10.0e6, 200e-12, 10e-6, "mirror", False, math.inf),
    Table1Row("oa7", 200, 3.0e6, 6000e-12, 1.0e-6, "mirror", True, 1e3),
    Table1Row("oa8", 100, 2.0e6, 1000e-12, 1.0e-6, "mirror", True, 10e3),
    Table1Row("oa9", 200, 5.0e6, 5000e-12, 10e-6, "mirror", True, 10e3),
]


def fmt(value: float, scale: float = 1.0, digits: int = 2) -> str:
    """Table cell formatting with NaN -> '-'."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value * scale:.{digits}f}"
