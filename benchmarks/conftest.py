"""Benchmark fixtures: shared technology and result-table printing."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.technology import generic_05um


@pytest.fixture(scope="session")
def tech():
    return generic_05um()


@pytest.fixture
def show():
    """Print a table even under pytest's captured output."""

    def _show(title: str, header: str, rows: list[str]) -> None:
        with capsys_disabled():
            print(f"\n=== {title} ===")
            print(header)
            print("-" * len(header))
            for row in rows:
                print(row)

    class capsys_disabled:
        def __enter__(self):
            self._capture = None
            return self

        def __exit__(self, *exc):
            return False

    # pytest captures stdout; writing to sys.__stdout__ bypasses it.
    def _show_direct(title: str, header: str, rows: list[str]) -> None:
        out = sys.__stdout__
        print(f"\n=== {title} ===", file=out)
        print(header, file=out)
        print("-" * len(header), file=out)
        for row in rows:
            print(row, file=out)
        out.flush()

    return _show_direct
