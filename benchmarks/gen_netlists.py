#!/usr/bin/env python
"""Generate parametric benchmark netlists as SPICE deck files.

Wraps the :mod:`repro.benchmark.netlists` generators — the RC ladder
behind the committed ``ac_ladder_<n>`` measures and the gain-module
chain — in a CLI so the same 100-2000-unknown fixtures can be fed to
external simulators or regenerated at any size:

    python benchmarks/gen_netlists.py --family ladder --sizes 100,500,2000
    python benchmarks/gen_netlists.py --family chain --sizes 500 --out-dir /tmp

Sizes are total MNA unknowns (matrix dimension), hit exactly.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.benchmark.netlists import (  # noqa: E402
    ladder_circuit,
    module_chain_circuit,
)
from repro.spice import System, write_deck_file  # noqa: E402

FAMILIES = {
    "ladder": ladder_circuit,
    "chain": module_chain_circuit,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="generate parametric benchmark netlists (SPICE decks)"
    )
    parser.add_argument(
        "--family", default="ladder", choices=sorted(FAMILIES),
        help="netlist family: RC ladder (tridiagonal) or gain-module "
             "chain (block-bidiagonal) (default: ladder)",
    )
    parser.add_argument(
        "--sizes", default="100,500,1000,2000", metavar="LIST",
        help="comma-separated MNA unknown counts (default: "
             "100,500,1000,2000)",
    )
    parser.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="directory for the generated .cir files (default: .)",
    )
    args = parser.parse_args(argv)

    try:
        sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--sizes must be a comma-separated int list, "
                     f"got {args.sizes!r}")
    if not sizes:
        parser.error("--sizes is empty")

    generate = FAMILIES[args.family]
    os.makedirs(args.out_dir, exist_ok=True)
    for size in sizes:
        circuit = generate(size)
        actual = System(circuit).size
        if actual != size:
            raise AssertionError(
                f"{args.family}({size}) produced {actual} unknowns"
            )
        path = os.path.join(
            args.out_dir, f"{args.family}_{size}.cir"
        )
        write_deck_file(circuit, path)
        print(f"{path}: {size} unknowns")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
