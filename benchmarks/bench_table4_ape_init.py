"""Paper Table 4: ASTRX/OBLX with APE-generated initial points.

For every Table 1 specification, two legs run with the SAME annealing
schedule and evaluation budget:

* standalone — wide uninformed intervals (paper Table 1), and
* APE-initialized — the analytically sized circuit as the starting
  point with every interval at the APE value +/- 20 % (paper Table 4).

Reported per amp: achieved gain/UGF/area/power, CPU seconds and the
speed-up of the APE leg versus the standalone leg (the paper saw
13.8-71.7 % with one -33.9 % outlier).

Expected shape: every APE-initialized run meets its specification while
most standalone runs do not, and APE's own runtime is negligible.
"""

from __future__ import annotations

import pytest

from paper_tables import SYNTH_BUDGET, TABLE1, fmt
from repro.parallel import EvalMemo, parallel_map
from repro.synthesis import synthesize_opamp


def _table4_row(item):
    """Both legs of one Table-1 row (module-level for pool pickling).

    The two legs share one evaluation memo: they synthesize the same
    template, so any candidate the wide standalone search revisits
    inside the APE window is served from cache.  Memo hits return the
    stored exact result, so the legs' metrics are unchanged.
    """
    tech, row, budget, seed = item
    memo = EvalMemo()
    standalone = synthesize_opamp(
        tech, row.spec(), row.topology(),
        mode="standalone", max_evaluations=budget,
        seed=seed, name=row.name, memo=memo,
    )
    ape = synthesize_opamp(
        tech, row.spec(), row.topology(),
        mode="ape", max_evaluations=budget,
        seed=seed, name=row.name, memo=memo,
    )
    return row, standalone, ape


def run_table4(tech, budget: int = SYNTH_BUDGET, seed: int = 11,
               workers=None):
    items = [(tech, row, budget, seed) for row in TABLE1]
    return parallel_map(_table4_row, items, workers=workers)


@pytest.mark.benchmark(group="table4")
def test_table4_ape_initialized(benchmark, tech, show):
    results = benchmark.pedantic(
        lambda: run_table4(tech), rounds=1, iterations=1
    )
    header = (
        f"{'ckt':4s} {'gain':>8s} {'UGF MHz':>8s} {'area um2':>9s} "
        f"{'power mW':>9s} {'CPU s':>7s} {'speed-up':>9s}  comment"
    )
    lines = []
    ape_meets = 0
    standalone_meets = 0
    for row, standalone, ape in results:
        ape_meets += 1 if ape.meets_spec else 0
        standalone_meets += 1 if standalone.meets_spec else 0
        total_ape = ape.cpu_seconds + ape.ape_seconds
        speedup = (standalone.cpu_seconds - total_ape) / standalone.cpu_seconds
        lines.append(
            f"{row.name:4s} {fmt(ape.metric('gain'), 1, 1):>8s} "
            f"{fmt(ape.metric('ugf'), 1e-6, 2):>8s} "
            f"{fmt(ape.metric('gate_area'), 1e12, 1):>9s} "
            f"{fmt(ape.metric('dc_power'), 1e3, 2):>9s} "
            f"{total_ape:7.2f} {speedup * 100:8.1f}%  {ape.comment}"
        )
    show("Table 4: ASTRX/OBLX with APE initialization (+/-20% ranges)",
         header, lines)
    # The paper's central claim: APE-initialized synthesis succeeds
    # where standalone synthesis fails.
    assert ape_meets >= 8, f"APE leg met spec only {ape_meets}/10 times"
    assert ape_meets > standalone_meets, (
        f"no improvement: ape {ape_meets} vs standalone {standalone_meets}"
    )


@pytest.mark.benchmark(group="table4")
def test_ape_estimation_time_negligible(benchmark, tech, show):
    """APE's own CPU time for all ten op-amps (paper: 0.12 s total)."""
    from repro.opamp import design_opamp

    def estimate_all():
        return [
            design_opamp(tech, row.spec(), row.topology(), name=row.name)
            for row in TABLE1
        ]

    amps = benchmark(estimate_all)
    assert len(amps) == 10
