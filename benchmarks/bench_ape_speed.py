"""APE estimation speed (paper §5: 0.12 s for ten op-amps, 0.14 s per
module example, "essentially negligible" next to the annealer).

Micro-benchmarks for every level of the hierarchy.  Expected shape:
transistor sizing in microseconds, op-amps well under a millisecond,
modules in single-digit milliseconds — orders of magnitude below one
annealing run.
"""

from __future__ import annotations

import pytest

from paper_tables import TABLE1
from repro.devices import size_for_gm_id
from repro.modules import SallenKeyLowPass, SampleHold
from repro.opamp import design_opamp


@pytest.mark.benchmark(group="ape-speed")
def test_transistor_sizing_speed(benchmark, tech):
    sized = benchmark(
        lambda: size_for_gm_id(tech.nmos, tech, gm=100e-6, ids=10e-6)
    )
    assert sized.gate_area > 0


@pytest.mark.benchmark(group="ape-speed")
def test_ten_opamps_speed(benchmark, tech):
    """The paper's headline: all ten Table 1 op-amps in one go."""

    def estimate_all():
        return [
            design_opamp(tech, row.spec(), row.topology(), name=row.name)
            for row in TABLE1
        ]

    amps = benchmark(estimate_all)
    assert len(amps) == 10
    # Same magnitude as the paper's 0.12 s (we are far faster hardware).
    assert benchmark.stats["mean"] < 0.12


@pytest.mark.benchmark(group="ape-speed")
def test_filter_module_speed(benchmark, tech):
    module = benchmark(
        lambda: SallenKeyLowPass.design(tech, order=4, f_corner=1e3)
    )
    assert module.estimate.gain > 1.0
    assert benchmark.stats["mean"] < 0.14


@pytest.mark.benchmark(group="ape-speed")
def test_sample_hold_module_speed(benchmark, tech):
    module = benchmark(
        lambda: SampleHold.design(
            tech, gain=2.0, bandwidth=20e3, response_time=500e-6
        )
    )
    assert module.estimate.gain == pytest.approx(2.0, rel=0.1)
    assert benchmark.stats["mean"] < 0.14
