"""Ablation: how wide can the search intervals get before synthesis
fails?

The paper fixes +/-20 % around the APE point; this bench sweeps the
range factor (10 %, 20 %, 50 %) plus the fully uninformed box, running
the same spec/seed/budget at each width.  Expected shape: success is
robust at narrow widths and decays toward the wide/uninformed end —
the mechanism behind Tables 1 vs 4.
"""

from __future__ import annotations

import pytest

from paper_tables import SYNTH_BUDGET, TABLE1, fmt
from repro.synthesis import synthesize_opamp

#: Specs exercised in the sweep (one buffered, one plain).
SWEEP_ROWS = [TABLE1[0], TABLE1[5]]
FACTORS = (0.1, 0.2, 0.5)
SEEDS = (3, 11)


def run_sweep(tech):
    results = []
    for row in SWEEP_ROWS:
        for label, kwargs in (
            [(f"+/-{int(f * 100)}%", {"mode": "ape", "range_factor": f})
             for f in FACTORS]
            + [("wide", {"mode": "standalone"})]
        ):
            meets = 0
            cost = 0.0
            for seed in SEEDS:
                res = synthesize_opamp(
                    tech, row.spec(), row.topology(),
                    max_evaluations=SYNTH_BUDGET, seed=seed,
                    name=row.name, **kwargs,
                )
                meets += 1 if res.meets_spec else 0
                cost += res.best_cost
            results.append((row.name, label, meets, len(SEEDS), cost / len(SEEDS)))
    return results


@pytest.mark.benchmark(group="ablation")
def test_range_width_ablation(benchmark, tech, show):
    results = benchmark.pedantic(lambda: run_sweep(tech), rounds=1, iterations=1)
    header = f"{'ckt':5s} {'ranges':>8s} {'success':>9s} {'avg cost':>9s}"
    lines = [
        f"{name:5s} {label:>8s} {meets:>4d}/{total:<4d} {fmt(cost, 1, 3):>9s}"
        for name, label, meets, total, cost in results
    ]
    show("Ablation: APE-range width vs synthesis success", header, lines)
    by_label: dict[str, int] = {}
    for _, label, meets, _, _ in results:
        by_label[label] = by_label.get(label, 0) + meets
    # Narrow informed ranges must beat the uninformed box.
    assert by_label["+/-20%"] > by_label["wide"], by_label
    assert by_label["+/-10%"] >= by_label["wide"], by_label
