"""Paper Table 3: APE estimate vs SPICE simulation for sized op-amps.

Four op-amps in the paper's configurations (OpAmp1-3: Wilson tail +
CMOS diff pair + output buffer; OpAmp4: simple-mirror tail + CMOS diff
pair, no buffer) are sized by APE and then fully simulated: DC power,
differential gain, UGF, output impedance, gate area, CMRR and slew
rate.  Expected shape: every est/sim pair agrees within tens of
percent (the paper's own deviations run up to ~70 % on UGF).
"""

from __future__ import annotations

import math

import pytest

from paper_tables import fmt
from repro.opamp import OpAmpSpec, OpAmpTopology, design_opamp, verify_opamp
from repro.parallel import parallel_map

# OpAmp1-4 specs in the spirit of the paper's Table 3 rows.
OPAMPS = [
    ("OpAmp1", OpAmpSpec(gain=206, ugf=1.3e6, ibias=1e-6, cl=10e-12),
     OpAmpTopology(current_source="wilson", output_buffer=True, z_load=1e3)),
    ("OpAmp2", OpAmpSpec(gain=374, ugf=8.0e6, ibias=2e-6, cl=10e-12),
     OpAmpTopology(current_source="wilson", output_buffer=True, z_load=1e3)),
    ("OpAmp3", OpAmpSpec(gain=167, ugf=12.4e6, ibias=1.5e-6, cl=10e-12),
     OpAmpTopology(current_source="wilson", output_buffer=True, z_load=2e3)),
    ("OpAmp4", OpAmpSpec(gain=400, ugf=2.6e6, ibias=1e-6, cl=10e-12),
     OpAmpTopology(current_source="mirror", output_buffer=False)),
]


def _table3_row(item):
    """Size and fully simulate one op-amp row (module-level so the
    process pool can pickle it by reference)."""
    tech, name, spec, topo = item
    amp = design_opamp(tech, spec, topo, name=name)
    sim = verify_opamp(
        amp, measure_slew=True, measure_zout=True, measure_cmrr=True
    )
    return name, amp, sim


def build_table3(tech, workers=None):
    items = [(tech, name, spec, topo) for name, spec, topo in OPAMPS]
    return parallel_map(_table3_row, items, workers=workers)


@pytest.mark.benchmark(group="table3")
def test_table3_est_vs_sim(benchmark, tech, show):
    results = benchmark.pedantic(
        lambda: build_table3(tech), rounds=1, iterations=1
    )
    header = (
        f"{'OpAmp':7s} {'P est/sim mW':>15s} {'Adm est/sim':>15s} "
        f"{'UGF est/sim MHz':>17s} {'Zout est/sim k':>16s} "
        f"{'Area est/sim um2':>18s} {'CMRR est dB':>12s} "
        f"{'SR est/sim V/us':>17s}"
    )
    lines = []
    for name, amp, sim in results:
        est = amp.estimate
        lines.append(
            f"{name:7s} "
            f"{fmt(est.dc_power, 1e3, 2):>6s}/{fmt(sim['dc_power'], 1e3, 2):<8s} "
            f"{fmt(est.gain, 1, 0):>6s}/{fmt(sim['gain'], 1, 0):<8s} "
            f"{fmt(est.ugf, 1e-6, 2):>7s}/{fmt(sim['ugf'], 1e-6, 2):<9s} "
            f"{fmt(est.zout, 1e-3, 2):>7s}/{fmt(sim['zout'], 1e-3, 2):<8s} "
            f"{fmt(est.gate_area, 1e12, 0):>8s}/{fmt(sim['gate_area'], 1e12, 0):<9s} "
            f"{fmt(est.cmrr_db, 1, 0):>12s} "
            f"{fmt(est.slew_rate, 1e-6, 2):>7s}/{fmt(sim['slew_rate'], 1e-6, 2):<9s}"
        )
    show("Table 3: estimation vs simulation, operational amplifiers",
         header, lines)
    for name, amp, sim in results:
        est = amp.estimate
        assert sim["gain"] == pytest.approx(est.gain, rel=0.25), name
        assert sim["ugf"] == pytest.approx(est.ugf, rel=0.7), name
        assert sim["dc_power"] == pytest.approx(est.dc_power, rel=0.3), name
        # Zout of the unbuffered two-stage is the softest estimate (the
        # simulated second-stage bias shifts its lambda-dependent gds).
        assert sim["zout"] == pytest.approx(est.zout, rel=0.7), name
        assert sim["gate_area"] == pytest.approx(est.gate_area, rel=0.1), name


@pytest.mark.benchmark(group="table3")
def test_single_opamp_estimation_speed(benchmark, tech):
    """Micro-benchmark: one APE op-amp estimate (sub-millisecond)."""
    name, spec, topo = OPAMPS[0]
    benchmark(lambda: design_opamp(tech, spec, topo, name=name))
