"""Paper Table 5: five analog design examples through three flows.

For each module (sample & hold, open-loop audio amplifier, 4-bit flash
ADC, 4th-order Sallen-Key Butterworth LPF, 2nd-order Sallen-Key BPF):

* column "ASTRX sim."  — optimization-based sizing alone, wide ranges;
* column "APE est."    — the analytical estimate;
* column "APE sim."    — full simulation of the APE-sized module;
* column "APE+A/O sim."— annealing from the APE point, +/-20 % ranges.

Expected shape (the paper's): the standalone flow fails or violates at
least some specs (its LPF/BPF "didn't work"); the APE estimate matches
its own simulation closely; APE+A/O meets every spec.
"""

from __future__ import annotations

import math
import time

import pytest

from paper_tables import MODULE_BUDGET, fmt
from repro.modules import (
    AudioAmplifier,
    FlashAdc,
    SallenKeyBandPass,
    SallenKeyLowPass,
    SampleHold,
)
from repro.synthesis import Annealer, CostFunction, SynthesisSpec
from repro.synthesis.module_problems import (
    ModuleSizingProblem,
    _module_point,
    clone_module,
    measure_bandpass,
    measure_gain_bandwidth,
    measure_lowpass,
    module_ranges,
)

SEED = 17


def _anneal(problem, cost, x0, budget=MODULE_BUDGET, seed=SEED):
    def evaluate(params):
        metrics = problem.evaluate(params)
        return cost(metrics), metrics

    annealer = Annealer(evaluate, problem.bounds(), seed=seed)
    start = time.perf_counter()
    result = annealer.run(x0=x0, max_evaluations=budget)
    return result, time.perf_counter() - start


def run_module_legs(module, spec: SynthesisSpec, measure, problem_cls=ModuleSizingProblem):
    """standalone / ape-est / ape-sim / ape+AO for one module."""
    cost = CostFunction(spec)
    legs: dict[str, object] = {}

    stand_problem = problem_cls(module, module_ranges(module, "standalone"), measure)
    result, cpu = _anneal(stand_problem, cost, x0=None)
    legs["standalone"] = (result.best_metrics, cost, cpu)

    ape_problem = problem_cls(module, module_ranges(module, "ape"), measure)
    x0 = {v.name: None for v in ape_problem.variables}
    point = _module_point(module)
    x0 = {v.name: point.get(v.name, v.lo) for v in ape_problem.variables}
    ape_sim = ape_problem.evaluate(x0)
    legs["ape_sim"] = (ape_sim, cost, 0.0)

    result, cpu = _anneal(ape_problem, cost, x0=x0)
    legs["ape_ao"] = (result.best_metrics, cost, cpu)
    return legs


class ComparatorDelayProblem(ModuleSizingProblem):
    """Flash-ADC sizing proxy: anneal the comparator, scale to the bank."""

    def __init__(self, adc: FlashAdc, variables):
        super().__init__(adc.comparator, variables, measure=None)
        self.adc = adc

    def evaluate(self, params):
        from repro.errors import ApeError, SimulationError

        try:
            candidate = clone_module(self.module, params)
            delay = candidate.measure_delay(overdrive=0.1)
            ckt, _ = candidate.verification_circuit()
            n_comp = 2**self.adc.bits - 1
            comp_gates = ckt.total_gate_area()
            return {
                "delay": delay * 1.15,
                "gate_area": n_comp * comp_gates
                + self.adc.estimate.gate_area
                - n_comp * self.adc.comparator.estimate.gate_area,
            }
        except (ApeError, SimulationError):
            return None


def build_table5(tech):
    rows = []

    # --- sample & hold: gain 2.0, BW 20 kHz ---------------------------
    sh = SampleHold.design(tech, gain=2.0, bandwidth=20e3, response_time=500e-6)
    spec = (
        SynthesisSpec()
        .require("gain", "ge", 1.8)
        .require("gain", "le", 2.2)
        .require("bandwidth", "ge", 20e3)
    )
    legs = run_module_legs(sh, spec, measure_gain_bandwidth(1e3, 1e3, 1e8))
    est = {"gain": sh.estimate.gain, "bandwidth": sh.estimate.bandwidth}
    rows.append(("s&h", ("gain", 2.0), ("bandwidth", 20e3), est, legs))

    # --- audio amplifier: open-loop gain 100, BW 20 kHz ---------------
    amp = AudioAmplifier.design(tech, gain=100.0, bandwidth=20e3)
    spec = (
        SynthesisSpec()
        .require("gain", "ge", 100.0)
        .require("bandwidth", "ge", 20e3)
    )

    def measure_amp(ckt, nodes):
        # Open-loop gain via the module's own op-amp measurement path.
        from repro.opamp import verify_opamp

        raise NotImplementedError  # replaced below

    # The audio amp *is* an op-amp; reuse the op-amp problem machinery.
    from repro.synthesis import (
        OpAmpSizingProblem,
        ape_ranges,
        standalone_ranges,
    )

    cost = CostFunction(spec)
    template = amp.opamps["main"]

    def amp_metrics(problem, params):
        metrics = problem.evaluate(params)
        if metrics is not None and not math.isnan(metrics.get("ugf", math.nan)):
            metrics["bandwidth"] = metrics["ugf"] / max(metrics["gain"], 1.0)
        return metrics

    stand_problem = OpAmpSizingProblem(template, standalone_ranges(template))
    def ev_stand(p):
        m = amp_metrics(stand_problem, p)
        return cost(m), m
    annealer = Annealer(ev_stand, stand_problem.bounds(), seed=SEED)
    start = time.perf_counter()
    res = annealer.run(max_evaluations=MODULE_BUDGET)
    cpu_stand = time.perf_counter() - start

    ape_problem = OpAmpSizingProblem(template, ape_ranges(template))
    x0 = {
        v.name: min(max(template.initial_point().get(v.name, v.lo), v.lo), v.hi)
        for v in ape_problem.variables
    }
    ape_sim = amp_metrics(ape_problem, x0)
    def ev_ape(p):
        m = amp_metrics(ape_problem, p)
        return cost(m), m
    annealer = Annealer(ev_ape, ape_problem.bounds(), seed=SEED)
    start = time.perf_counter()
    res_ape = annealer.run(x0=x0, max_evaluations=MODULE_BUDGET)
    cpu_ape = time.perf_counter() - start
    legs = {
        "standalone": (res.best_metrics, cost, cpu_stand),
        "ape_sim": (ape_sim, cost, 0.0),
        "ape_ao": (res_ape.best_metrics, cost, cpu_ape),
    }
    est = {"gain": amp.estimate.gain, "bandwidth": amp.estimate.bandwidth}
    rows.append(("amp", ("gain", 100.0), ("bandwidth", 20e3), est, legs))

    # --- 4-bit flash ADC: delay <= 5 us --------------------------------
    adc = FlashAdc.design(tech, bits=4, delay=5e-6)
    spec = (
        SynthesisSpec()
        .require("delay", "le", 5e-6)
        .require("gate_area", "le", 5000e-12)
    )
    cost = CostFunction(spec)
    stand_problem = ComparatorDelayProblem(
        adc, module_ranges(adc.comparator, "standalone")
    )
    res, cpu_stand = _anneal(stand_problem, cost, x0=None, budget=MODULE_BUDGET // 2)
    ape_problem = ComparatorDelayProblem(
        adc, module_ranges(adc.comparator, "ape")
    )
    point = _module_point(adc.comparator)
    x0 = {v.name: point.get(v.name, v.lo) for v in ape_problem.variables}
    ape_sim = ape_problem.evaluate(x0)
    res_ape, cpu_ape = _anneal(ape_problem, cost, x0=x0, budget=MODULE_BUDGET // 2)
    legs = {
        "standalone": (res.best_metrics, cost, cpu_stand),
        "ape_sim": (ape_sim, cost, 0.0),
        "ape_ao": (res_ape.best_metrics, cost, cpu_ape),
    }
    est = {"delay": adc.delay, "gate_area": adc.estimate.gate_area}
    rows.append(("adc", ("delay", 5e-6), ("gate_area", 5000e-12), est, legs))

    # --- 4th-order Sallen-Key Butterworth LPF, 1 kHz -------------------
    lpf = SallenKeyLowPass.design(tech, order=4, f_corner=1e3)
    spec = (
        SynthesisSpec()
        .require("f_3db", "ge", 900.0)
        .require("f_3db", "le", 1100.0)
        .require("f_20db", "le", 2000.0)
        .require("gain", "ge", lpf.estimate.gain * 0.9)
    )
    legs = run_module_legs(lpf, spec, measure_lowpass(50.0, 2e5))
    est = {
        "gain": lpf.estimate.gain,
        "f_3db": lpf.estimate.extras["f_3db"],
        "f_20db": lpf.estimate.extras["f_20db"],
    }
    rows.append(("lpf", ("f_3db", 1e3), ("gain", lpf.estimate.gain), est, legs))

    # --- 2nd-order Sallen-Key BPF, f0 = 1 kHz, BW = 1 kHz ---------------
    bpf = SallenKeyBandPass.design(tech, f_center=1e3, bandwidth=1e3)
    spec = (
        SynthesisSpec()
        .require("f0", "ge", 900.0)
        .require("f0", "le", 1100.0)
        .require("gain", "ge", bpf.estimate.gain * 0.8)
        .require("bandwidth", "ge", 700.0)
        .require("bandwidth", "le", 1400.0)
    )
    legs = run_module_legs(bpf, spec, measure_bandpass(20.0, 1e5, 12))
    est = {
        "gain": bpf.estimate.gain,
        "f0": bpf.estimate.extras["f0"],
        "bandwidth": bpf.estimate.bandwidth,
    }
    rows.append(("bpf", ("f0", 1e3), ("gain", bpf.estimate.gain), est, legs))

    return rows


def _cell(metrics, key):
    if metrics is None:
        return "doesn't work"
    value = metrics.get(key, math.nan)
    return "-" if math.isnan(value) else f"{value:.4g}"


@pytest.mark.benchmark(group="table5")
def test_table5_design_examples(benchmark, tech, show):
    rows = benchmark.pedantic(lambda: build_table5(tech), rounds=1, iterations=1)
    header = (
        f"{'ckt':4s} {'param':10s} {'spec':>10s} {'ASTRX sim':>12s} "
        f"{'APE est':>10s} {'APE sim':>10s} {'APE+A/O':>10s}  verdicts"
    )
    lines = []
    shape_ok = {"ape_ao_meets": 0, "standalone_fails": 0, "n": 0}
    for name, primary, secondary, est, legs in rows:
        stand_m, cost, cpu_s = legs["standalone"]
        ape_sim_m, _, _ = legs["ape_sim"]
        ape_ao_m, _, cpu_a = legs["ape_ao"]
        stand_ok = cost.meets_spec(stand_m)
        ape_ok = cost.meets_spec(ape_ao_m)
        shape_ok["n"] += 1
        shape_ok["ape_ao_meets"] += 1 if ape_ok else 0
        shape_ok["standalone_fails"] += 0 if stand_ok else 1
        for key, bound in (primary, secondary):
            est_v = est.get(key, math.nan)
            est_cell = "-" if math.isnan(est_v) else f"{est_v:.4g}"
            lines.append(
                f"{name:4s} {key:10s} {bound:10.3g} "
                f"{_cell(stand_m, key):>12s} "
                f"{est_cell:>10s} "
                f"{_cell(ape_sim_m, key):>10s} "
                f"{_cell(ape_ao_m, key):>10s}  "
                f"stand={'ok' if stand_ok else 'FAIL'} "
                f"ape={'ok' if ape_ok else 'FAIL'} "
                f"cpu {cpu_s:.1f}/{cpu_a:.1f}s"
            )
    show("Table 5: design examples (ASTRX alone vs APE vs APE+A/O)",
         header, lines)
    # Paper shape: APE+A/O satisfies everything; standalone does not.
    assert shape_ok["ape_ao_meets"] >= 4, shape_ok
    assert shape_ok["standalone_fails"] >= 2, shape_ok
    # APE est vs APE sim agreement on the primary figure of each row.
    for name, primary, _, est, legs in rows:
        ape_sim_m = legs["ape_sim"][0]
        key = primary[0]
        if ape_sim_m is None or math.isnan(est.get(key, math.nan)):
            continue
        sim_v = ape_sim_m.get(key, math.nan)
        if not math.isnan(sim_v) and est[key] != 0:
            assert abs(sim_v - est[key]) / abs(est[key]) < 0.6, (name, key)
