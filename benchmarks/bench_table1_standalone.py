"""Paper Table 1: ASTRX/OBLX *standalone* over the ten op-amp specs.

The paper submitted each specification "without initial design points"
and observed that only one in ten designs met its constraints.  This
bench runs our ASTRX/OBLX-style engine with wide, uninformed search
intervals and the shared evaluation budget and reports the same
columns: achieved gain, UGF, gate area, power, CPU time and a comment.

Expected shape: most rows FAIL their specification.
"""

from __future__ import annotations

import pytest

from paper_tables import SYNTH_BUDGET, TABLE1, fmt
from repro.synthesis import synthesize_opamp


def run_table1(tech, budget: int = SYNTH_BUDGET, seed: int = 11):
    results = []
    for row in TABLE1:
        result = synthesize_opamp(
            tech, row.spec(), row.topology(),
            mode="standalone", max_evaluations=budget,
            seed=seed, name=row.name,
        )
        results.append((row, result))
    return results


@pytest.mark.benchmark(group="table1")
def test_table1_standalone(benchmark, tech, show):
    results = benchmark.pedantic(
        lambda: run_table1(tech), rounds=1, iterations=1
    )
    header = (
        f"{'ckt':4s} {'spec G/U':>14s} {'gain':>8s} {'UGF MHz':>8s} "
        f"{'area um2':>9s} {'power mW':>9s} {'CPU s':>7s}  comment"
    )
    rows = []
    failures = 0
    for row, result in results:
        ok = result.meets_spec
        failures += 0 if ok else 1
        rows.append(
            f"{row.name:4s} {row.gain:6.0f}/{row.ugf / 1e6:4.1f}M "
            f"{fmt(result.metric('gain'), 1, 1):>8s} "
            f"{fmt(result.metric('ugf'), 1e-6, 2):>8s} "
            f"{fmt(result.metric('gate_area'), 1e12, 1):>9s} "
            f"{fmt(result.metric('dc_power'), 1e3, 2):>9s} "
            f"{result.cpu_seconds:7.2f}  {result.comment}"
        )
    show("Table 1: ASTRX/OBLX standalone (wide ranges, no initial point)",
         header, rows)
    # Paper shape: 9/10 failed; require that a clear majority fails.
    assert failures >= 5, f"only {failures}/10 failed - too easy"
