"""Ablation: AWE reduced-order evaluation vs a full AC sweep.

ASTRX/OBLX's speed rests on evaluating candidates with AWE moment
matching instead of a frequency sweep; this bench quantifies both the
speed ratio and the accuracy of the AWE gain/UGF against a dense AC
reference on an APE-sized op-amp.  Expected shape: AWE is several times
faster per evaluation with percent-level gain error and UGF within a
few tens of percent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.opamp import OpAmpSpec, OpAmpTopology, design_opamp
from repro.opamp.benches import balanced_open_loop
from repro.spice import ac_analysis, awe_poles, unity_gain_frequency
from repro.spice.ac import log_frequencies


@pytest.fixture(scope="module")
def balanced_amp(tech=None):
    from repro.technology import generic_05um

    tech = generic_05um()
    amp = design_opamp(
        tech,
        OpAmpSpec(gain=200.0, ugf=2e6, ibias=2e-6, cl=10e-12),
        OpAmpTopology(current_source="wilson"),
        name="awe-ablation",
    )
    _, bench, op = balanced_open_loop(amp)
    return bench, op


@pytest.mark.benchmark(group="ablation-awe")
def test_awe_evaluation_speed(benchmark, balanced_amp):
    bench, op = balanced_amp
    model = benchmark(lambda: awe_poles(bench, "out", order=3, op=op))
    assert model.dc_gain != 0.0


@pytest.mark.benchmark(group="ablation-awe")
def test_full_ac_evaluation_speed(benchmark, balanced_amp):
    bench, op = balanced_amp
    freqs = log_frequencies(1.0, 1e9, 20)

    def full_sweep():
        return ac_analysis(bench, op=op, frequencies=freqs)

    ac = benchmark(full_sweep)
    assert len(ac.frequencies) == len(freqs)


@pytest.mark.benchmark(group="ablation-awe")
def test_awe_accuracy_vs_ac(benchmark, balanced_amp, show):
    bench, op = balanced_amp

    def compare():
        freqs = log_frequencies(1.0, 1e9, 20)
        ac = ac_analysis(bench, op=op, frequencies=freqs)
        gain_ref = float(ac.magnitude("out")[0])
        ugf_ref = unity_gain_frequency(ac, "out")
        model = awe_poles(bench, "out", order=3, op=op)
        return gain_ref, ugf_ref, abs(model.dc_gain), model.unity_gain_frequency()

    gain_ref, ugf_ref, gain_awe, ugf_awe = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    show(
        "Ablation: AWE vs dense AC sweep",
        f"{'figure':12s} {'AC ref':>12s} {'AWE':>12s} {'error %':>8s}",
        [
            f"{'gain':12s} {gain_ref:12.2f} {gain_awe:12.2f} "
            f"{abs(gain_awe - gain_ref) / gain_ref * 100:8.2f}",
            f"{'UGF Hz':12s} {ugf_ref:12.3g} {ugf_awe:12.3g} "
            f"{abs(ugf_awe - ugf_ref) / ugf_ref * 100:8.2f}",
        ],
    )
    assert gain_awe == pytest.approx(gain_ref, rel=0.05)
    assert ugf_awe == pytest.approx(ugf_ref, rel=0.35)
