"""Engine hot-path benchmark: stamp-compiled vs naive MNA assembly.

Two ways to run it:

* ``python benchmarks/bench_engine_hotpath.py [--quick] [--out PATH]``
  — the standalone A/B harness.  Delegates to
  :func:`repro.benchmark.run_engine_benchmark`, prints the speedup
  table and writes the machine-readable ``BENCH_engine.json`` (same
  behaviour as ``repro bench``).
* ``pytest benchmarks/bench_engine_hotpath.py`` — pytest-benchmark
  micro-benchmarks of the compiled path for each workload, so the hot
  path shows up in the same benchmark reports as the APE-speed suite.

The compiled/naive speedup assertions live in the standalone harness
(and ``tests/test_engine_equivalence.py`` holds the correctness A/B);
the pytest side only tracks absolute timings.
"""

from __future__ import annotations

import sys

import pytest

from repro.benchmark import (
    _anneal_fixture,
    _opamp_fixture,
    _transient_fixture,
    render_report,
    run_engine_benchmark,
    write_report,
)


@pytest.mark.benchmark(group="engine-hotpath")
def test_op_compiled_speed(benchmark):
    from repro.spice.dc import dc_operating_point

    bench, system, _ = _opamp_fixture()
    op = benchmark(lambda: dc_operating_point(bench, system=system))
    assert op.saturation_fraction() > 0.0


@pytest.mark.benchmark(group="engine-hotpath")
def test_ac_sweep_compiled_speed(benchmark):
    from repro.spice.ac import ac_analysis, log_frequencies

    bench, _, op = _opamp_fixture()
    freqs = log_frequencies(1.0, 1e9, 10)
    ac = benchmark(lambda: ac_analysis(bench, op=op, frequencies=freqs))
    assert ac.magnitude("out")[0] > 1.0


@pytest.mark.benchmark(group="engine-hotpath")
def test_transient_compiled_speed(benchmark):
    from repro.spice.transient import transient_analysis

    ckt = _transient_fixture()
    tran = benchmark(lambda: transient_analysis(ckt, 1e-6, 1e-8))
    assert len(tran.times) > 10


@pytest.mark.benchmark(group="engine-hotpath")
def test_anneal_eval_compiled_speed(benchmark):
    problem, _, params_list = _anneal_fixture()
    metrics = benchmark(
        lambda: [problem.evaluate(params) for params in params_list]
    )
    assert any(m is not None for m in metrics)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="A/B benchmark: compiled vs naive MNA assembly"
    )
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--min-time", type=float, default=None)
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when a speedup target is missed")
    args = parser.parse_args(argv)
    report = run_engine_benchmark(quick=args.quick, min_time=args.min_time)
    print(render_report(report))
    write_report(report, args.out)
    print(f"report written to {args.out}")
    if args.check and not report.all_targets_met():
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
