"""Paper Table 2: APE estimate vs SPICE simulation, basic components.

Every level-2 component is sized analytically for a paper-style spec
point, netlisted, and simulated with the MNA engine; the bench prints
est/sim pairs for gate area, UGF, DC power, gain and current, mirroring
the paper's columns.  Expected shape: est and sim agree within tens of
percent for every defined figure.
"""

from __future__ import annotations

import math

import pytest

from paper_tables import fmt
from repro.components import (
    CascodeCurrentSource,
    CurrentMirror,
    DcVoltageBias,
    DiffCmos,
    DiffNmos,
    GainCmos,
    GainCmosH,
    GainNmos,
    SourceFollower,
    WilsonCurrentSource,
)
from repro.spice import (
    ac_analysis,
    balance_differential,
    dc_operating_point,
    gain_at,
    unity_gain_frequency,
)
from repro.spice.ac import log_frequencies


def _supply_power(op, tech) -> float:
    return tech.vdd * (-op.i("VDDSUP")) + tech.vss * (-op.i("VSSSUP"))


def _simulate_component(comp, kind):
    """Measure the sim columns for one Table 2 row."""
    tech = comp.tech
    sim: dict[str, float] = {}
    if kind == "dcvolt":
        ckt, nodes = comp.verification_circuit()
        op = dc_operating_point(ckt)
        sim["gain"] = op.v(nodes["out"])  # the produced voltage
        sim["current"] = op.supply_current(nodes["supply"])
        sim["dc_power"] = _supply_power(op, tech)
        sim["gate_area"] = ckt.total_gate_area()
    elif kind == "mirror":
        ckt, nodes = comp.verification_circuit()
        op = dc_operating_point(ckt)
        sim["current"] = abs(op.i(nodes["meter"]))
        sim["dc_power"] = tech.supply_span * sim["current"]
        sim["gate_area"] = ckt.total_gate_area()
    elif kind == "gain":
        ckt, nodes = comp.verification_circuit()
        op = dc_operating_point(ckt)
        sim["gain"] = -gain_at(ckt, nodes["out"], 1e3, op=op)
        ac = ac_analysis(
            ckt, op=op, frequencies=log_frequencies(1e3, 1e10, 10)
        )
        sim["ugf"] = unity_gain_frequency(ac, nodes["out"])
        sim["dc_power"] = _supply_power(op, tech)
        sim["gate_area"] = ckt.total_gate_area()
    elif kind == "follower":
        ckt, nodes = comp.verification_circuit()
        op = dc_operating_point(ckt)
        sim["gain"] = gain_at(ckt, nodes["out"], 1e3, op=op)
        sim["current"] = comp.devices["sink"].ids
        sim["dc_power"] = _supply_power(op, tech)
        sim["gate_area"] = ckt.total_gate_area()
    elif kind == "diff_cmos":
        def build(v):
            ckt, _ = comp.bench("differential", v_diff=v)
            return ckt

        _, ckt, op = balance_differential(build, "out")
        sim["gain"] = gain_at(ckt, "out", 100.0, op=op)
        ac = ac_analysis(
            ckt, op=op, frequencies=log_frequencies(100.0, 1e9, 10)
        )
        sim["ugf"] = unity_gain_frequency(ac, "out")
        sim["dc_power"] = tech.supply_span * comp.tail_current
        sim["gate_area"] = sum(
            m.w * m.l for m in ckt.mosfets() if m.name.startswith("X1")
        )
    elif kind == "diff_nmos":
        ckt, nodes = comp.bench("differential")
        op = dc_operating_point(ckt)
        ac = ac_analysis(
            ckt, op=op, frequencies=log_frequencies(100.0, 1e9, 10)
        )
        diff = abs(ac.differential(nodes["outp"], nodes["outn"]))
        sim["gain"] = -float(diff[0])
        sim["dc_power"] = tech.supply_span * comp.tail_current
        sim["gate_area"] = sum(
            m.w * m.l for m in ckt.mosfets() if m.name.startswith("X1")
        )
    return sim


def build_table2(tech):
    rows = []
    rows.append((
        "DCVolt",
        DcVoltageBias.design(tech, v_out=0.0, current=100e-6),
        "dcvolt",
    ))
    rows.append((
        "CurrMirr", CurrentMirror.design(tech, current=100e-6), "mirror"
    ))
    rows.append((
        "Wilson", WilsonCurrentSource.design(tech, current=100e-6), "mirror"
    ))
    rows.append((
        "Cascode", CascodeCurrentSource.design(tech, current=100e-6), "mirror"
    ))
    rows.append((
        "GainNMOS",
        GainNmos.design(tech, gain=-8.5, current=100e-6, cl=1e-12),
        "gain",
    ))
    rows.append((
        "GainCMOS",
        GainCmos.design(tech, gain=-19.0, current=100e-6, cl=1e-12),
        "gain",
    ))
    rows.append((
        "GainCMOSH",
        GainCmosH.design(tech, current=46e-6, cl=1e-12),
        "gain",
    ))
    rows.append((
        "Follower", SourceFollower.design(tech, current=100e-6), "follower"
    ))
    rows.append((
        "DiffNMOS",
        DiffNmos.design(tech, adm=-10.0, tail_current=2e-6, cl=1e-12),
        "diff_nmos",
    ))
    rows.append((
        "DiffCMOS",
        DiffCmos.design(tech, adm=330.0, tail_current=2e-6, cl=1e-12),
        "diff_cmos",
    ))
    results = []
    for name, comp, kind in rows:
        results.append((name, comp.estimate, _simulate_component(comp, kind)))
    return results


@pytest.mark.benchmark(group="table2")
def test_table2_est_vs_sim(benchmark, tech, show):
    results = benchmark.pedantic(
        lambda: build_table2(tech), rounds=1, iterations=1
    )
    header = (
        f"{'Topology':10s} {'Area est/sim um2':>20s} {'UGF est/sim MHz':>18s} "
        f"{'Power est/sim mW':>18s} {'Gain est/sim':>16s} {'I est/sim uA':>15s}"
    )
    lines = []
    for name, est, sim in results:
        lines.append(
            f"{name:10s} "
            f"{fmt(est.gate_area, 1e12, 1):>9s}/{fmt(sim.get('gate_area'), 1e12, 1):<10s} "
            f"{fmt(est.ugf, 1e-6, 2):>8s}/{fmt(sim.get('ugf'), 1e-6, 2):<9s} "
            f"{fmt(est.dc_power, 1e3, 2):>8s}/{fmt(sim.get('dc_power'), 1e3, 2):<9s} "
            f"{fmt(est.gain, 1, 1):>7s}/{fmt(sim.get('gain'), 1, 1):<8s} "
            f"{fmt(est.current, 1e6, 1):>6s}/{fmt(sim.get('current'), 1e6, 1):<8s}"
        )
    show("Table 2: estimation vs simulation, basic analog components",
         header, lines)
    # Shape assertions: every defined est/sim pair agrees within 50 %.
    for name, est, sim in results:
        for key in ("gate_area", "ugf", "dc_power", "gain", "current"):
            e = getattr(est, key)
            s = sim.get(key)
            if s is None or math.isnan(e) or e == 0.0:
                continue
            assert abs(s - e) / abs(e) < 0.5, f"{name}.{key}: est {e} sim {s}"
