"""Ablation: annealing budget vs synthesis success.

The paper holds the annealer's settings fixed and varies only the
initial point / intervals; this bench asks the complementary question:
how much *budget* does each mode need?  The same spec runs at rising
evaluation budgets in both modes.  Expected shape: the APE-initialized
leg succeeds from the smallest budgets (it starts inside the feasible
region), while the standalone leg needs far more evaluations — or
never gets there at all on the harder, buffered specification.
"""

from __future__ import annotations

import pytest

from paper_tables import TABLE1
from repro.synthesis import synthesize_opamp

BUDGETS = (25, 75, 150, 300)
ROW = TABLE1[0]  # oa0: buffered, Wilson tail — the hard spec
SEED = 11


def run_budget_sweep(tech):
    results = []
    for budget in BUDGETS:
        for mode in ("ape", "standalone"):
            res = synthesize_opamp(
                tech, ROW.spec(), ROW.topology(),
                mode=mode, max_evaluations=budget,
                seed=SEED, name=ROW.name,
            )
            results.append((budget, mode, res.meets_spec, res.best_cost))
    return results


@pytest.mark.benchmark(group="ablation")
def test_budget_ablation(benchmark, tech, show):
    results = benchmark.pedantic(
        lambda: run_budget_sweep(tech), rounds=1, iterations=1
    )
    header = f"{'budget':>7s} {'mode':>11s} {'meets':>6s} {'best cost':>10s}"
    lines = [
        f"{budget:7d} {mode:>11s} {str(ok):>6s} {cost:10.3f}"
        for budget, mode, ok, cost in results
    ]
    show("Ablation: evaluation budget vs success (spec oa0)", header, lines)
    by = {(b, m): ok for b, m, ok, _ in results}
    # APE-initialized succeeds already at small budgets.
    assert by[(75, "ape")] or by[(25, "ape")]
    # At every budget the APE leg's best cost is no worse.
    costs = {(b, m): c for b, m, _, c in results}
    for budget in BUDGETS:
        assert costs[(budget, "ape")] <= costs[(budget, "standalone")] + 1e-9
